//! The cluster's central scheduler: one bounded priority/deadline queue
//! feeding every executor replica.
//!
//! # Queueing discipline
//!
//! Requests carry a [`Priority`] class, a [`TenantId`] and an optional
//! relative deadline ([`SubmitOptions`]). By default batch formation pops
//! the most urgent live request first: strictly by priority class,
//! **earliest-deadline-first within a class** (deadline-less requests
//! rank after any deadlined one, FIFO among themselves). A single binary
//! heap over the composite key `(priority, deadline, sequence)`
//! implements this in `O(log n)` per operation.
//!
//! # Overload control (opt-in)
//!
//! Strict priority is the right default for an uncontended cluster, but
//! under sustained overload it starves: a flood of `High` requests delays
//! `Low` indefinitely, and one hot tenant can crowd out everyone.
//! Configuring a [`FairPolicy`] (`ClusterConfig::with_fair`) switches the
//! batch queue to **per-tenant weighted fair queueing**: every
//! `(tenant, priority)` pair is a flow weighted
//! `tenant.weight × priority_weights[class]`, served by a self-clocked
//! virtual-finish-time clock (SCFQ), EDF within each flow. Each flow's
//! share of executor slots converges to its weight fraction, so `High`
//! still dominates but `Low`'s wait is bounded, and tenants get their
//! weighted share. Token buckets ([`RateLimit`]) shed per-tenant overload
//! at admission with [`SubmitError::RateLimited`]. Scheduling order never
//! affects any request's logits — the bit-determinism contract is
//! independent of the discipline.
//!
//! # Cancellation and expiry
//!
//! Dropping a `ClusterTicket` flips the request's shared cancel flag.
//! Cancelled requests are reaped when popped — and re-checked when a
//! collecting batch closes — so a request cancelled before execution
//! **never consumes executor time** and is counted in
//! [`crate::metrics::PriorityStats::cancelled`]. A request whose deadline
//! passes while still queued is dropped the same way, with
//! [`InferError::DeadlineExpired`] delivered to its ticket: the deadline
//! bounds *queueing delay* — a request popped into an executing batch
//! before its deadline runs to completion.
//!
//! # Backpressure
//!
//! The queue is bounded by "outstanding" requests — admitted and not yet
//! in a terminal state (served / cancelled / expired / failed). Blocking
//! `submit` waits for space; `try_submit` fails fast with
//! [`SubmitError::Saturated`] so ingestion layers can shed load instead of
//! buffering without bound.
//!
//! # Why not per-replica queues
//!
//! A single queue keeps the determinism story trivial (any replica may
//! serve any request — outputs are bit-identical because every replica
//! aliases the same frozen weights and runs
//! [`ttsnn_snn::InferStats::PerSample`]), gives free work stealing (a slow
//! batch on one replica never blocks requests behind it), and makes
//! priorities global rather than per-replica.

use std::cmp::{Ordering as CmpOrdering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ttsnn_tensor::Tensor;

use crate::engine::InferError;
use crate::metrics::ClusterMetrics;
use crate::stream::{FeedReport, StreamOptions, StreamUpdate};

/// Identity of the client a request is accounted (and fair-queued)
/// against. Tenant `0` is the default for callers that never set one.
pub type TenantId = u32;

/// Scheduling class of a request. Higher classes always form batches
/// first; within a class the earliest deadline wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive traffic — always scheduled before the others.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Throughput traffic that yields to everything else.
    Low,
}

impl Priority {
    /// Number of priority classes (array dimension for per-priority
    /// metrics).
    pub const COUNT: usize = 3;

    /// All classes, most urgent first.
    pub const ALL: [Priority; Priority::COUNT] = [Priority::High, Priority::Normal, Priority::Low];

    /// Stable index of this class (0 = most urgent), e.g. into
    /// [`crate::metrics::ClusterMetrics::per_priority`].
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Per-request scheduling knobs for `ClusterSession::submit_with`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Scheduling class ([`Priority::Normal`] by default).
    pub priority: Priority,
    /// Optional **relative** deadline: if the request is still queued this
    /// long after submission, the scheduler drops it with
    /// [`InferError::DeadlineExpired`] instead of executing stale work.
    /// `None` (default) never expires. Values too large to represent as an
    /// absolute instant (e.g. `Duration::MAX`) behave like `None`.
    pub deadline: Option<Duration>,
    /// Which tenant the request is accounted against (`0` by default).
    /// Under a [`FairPolicy`] the tenant selects the request's fair-queue
    /// flow and token bucket; without one it only labels the per-tenant
    /// metrics.
    pub tenant: TenantId,
    /// Request-lifecycle trace id (`ttsnn_obs`; minted at wire decode by
    /// the serving plane). `0` (the default) means untraced: the
    /// scheduler records no spans for the request. Tracing never affects
    /// scheduling order or any request's logits.
    pub trace: u64,
}

impl SubmitOptions {
    /// Options with the given priority and no deadline.
    pub fn priority(priority: Priority) -> Self {
        Self { priority, ..Self::default() }
    }

    /// Returns these options with a relative deadline set.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns these options with the tenant id set.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Returns these options with a request-lifecycle trace id attached
    /// (see [`ttsnn_obs::next_trace_id`]).
    pub fn with_trace(mut self, trace: u64) -> Self {
        self.trace = trace;
        self
    }
}

/// Context attached to a [`SubmitError::Saturated`] / `RateLimited`
/// rejection so ingress layers can answer with a structured retry-after
/// instead of a generic 503.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectInfo {
    /// The tenant whose submission was rejected.
    pub tenant: TenantId,
    /// The rejected request's priority class.
    pub priority: Priority,
    /// Suggested client back-off before retrying. For saturation this is
    /// derived from the cluster's measured mean service latency; for rate
    /// limiting it is the time until the tenant's token bucket refills.
    pub retry_after: Duration,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full ([`try_submit`](crate::ClusterSession::try_submit)
    /// only): shed the request or retry later — this is the backpressure
    /// signal. Carries the rejected request's tenant/priority and a
    /// retry-after hint.
    Saturated(RejectInfo),
    /// The tenant's token bucket is empty under the cluster's
    /// [`FairPolicy`] rate limit. Carries the time until a token refills.
    RateLimited(RejectInfo),
    /// The cluster has shut down.
    Closed,
}

impl SubmitError {
    /// The rejection context, when the error carries one (`Saturated` and
    /// `RateLimited`; `Closed` has none).
    pub fn reject_info(&self) -> Option<RejectInfo> {
        match self {
            SubmitError::Saturated(info) | SubmitError::RateLimited(info) => Some(*info),
            SubmitError::Closed => None,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated(info) => write!(
                f,
                "cluster queue is saturated (backpressure; tenant {}, retry after {:?})",
                info.tenant, info.retry_after
            ),
            SubmitError::RateLimited(info) => write!(
                f,
                "tenant {} is rate-limited (retry after {:?})",
                info.tenant, info.retry_after
            ),
            SubmitError::Closed => write!(f, "cluster has shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Per-tenant token-bucket rate limit (requests per second plus burst
/// headroom). A tenant with an empty bucket is rejected at submission
/// with [`SubmitError::RateLimited`] — overload is shed at admission,
/// before it can queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admission rate, in requests per second (> 0).
    pub per_sec: f64,
    /// Bucket capacity: how many requests may be admitted in a burst
    /// before the sustained rate gates (≥ 1).
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `per_sec` sustained requests/s with `burst` headroom.
    pub fn new(per_sec: f64, burst: f64) -> Self {
        Self { per_sec, burst }
    }
}

/// One tenant's share of the cluster under a [`FairPolicy`]: its
/// weighted-fair-queueing weight and optional token-bucket rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// WFQ weight (> 0): over a busy period a tenant's served share
    /// converges to `weight / Σ active weights`.
    pub weight: f64,
    /// Optional admission rate limit (`None` = unlimited).
    pub rate: Option<RateLimit>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self { weight: 1.0, rate: None }
    }
}

impl TenantPolicy {
    /// A policy with the given weight and no rate limit.
    pub fn weighted(weight: f64) -> Self {
        Self { weight, rate: None }
    }

    /// Returns this policy with a token-bucket rate limit attached.
    pub fn with_rate(mut self, rate: RateLimit) -> Self {
        self.rate = Some(rate);
        self
    }
}

/// Opt-in overload control: per-tenant **weighted fair queueing** with
/// token-bucket rate limits, and a weighted (rather than strict) ordering
/// across priority classes.
///
/// Without a policy the scheduler keeps its original discipline — strict
/// priority classes with EDF inside each class — under which a sustained
/// [`Priority::High`] flood starves `Low` forever. With one, every
/// `(tenant, priority)` pair becomes a *flow* with weight
/// `tenant.weight × priority_weights[class]`, and batch formation picks
/// flows by a self-clocked virtual-finish-time clock: each flow's share of
/// served requests converges to its weight fraction, so `High` still
/// dominates (default 8× `Low`'s weight) but can no longer starve, and a
/// hot tenant cannot crowd out the rest. Within a flow the order stays
/// earliest-deadline-first.
///
/// Fairness only reorders execution; it cannot change any request's
/// logits — the cluster's bit-determinism contract is independent of
/// scheduling order.
#[derive(Debug, Clone, PartialEq)]
pub struct FairPolicy {
    /// Policy applied to tenants absent from [`FairPolicy::tenants`].
    pub default_tenant: TenantPolicy,
    /// Per-tenant overrides.
    pub tenants: BTreeMap<TenantId, TenantPolicy>,
    /// Relative weight of each priority class, indexed by
    /// [`Priority::index`]. The default `[8, 3, 1]` keeps `High` strongly
    /// preferred while guaranteeing `Low` roughly 1 in 12 slots under
    /// saturation.
    pub priority_weights: [f64; Priority::COUNT],
}

impl Default for FairPolicy {
    fn default() -> Self {
        Self {
            default_tenant: TenantPolicy::default(),
            tenants: BTreeMap::new(),
            priority_weights: [8.0, 3.0, 1.0],
        }
    }
}

impl FairPolicy {
    /// Sets (or replaces) one tenant's policy.
    pub fn with_tenant(mut self, tenant: TenantId, policy: TenantPolicy) -> Self {
        self.tenants.insert(tenant, policy);
        self
    }

    /// Overrides the per-priority-class weights.
    pub fn with_priority_weights(mut self, weights: [f64; Priority::COUNT]) -> Self {
        self.priority_weights = weights;
        self
    }

    /// The effective policy for a tenant (override or default).
    pub fn tenant(&self, tenant: TenantId) -> TenantPolicy {
        self.tenants.get(&tenant).copied().unwrap_or(self.default_tenant)
    }

    /// A policy from the environment: `TTSNN_TENANT_WEIGHTS` is a comma
    /// list of `tenant=weight` pairs (e.g. `"1=4,2=1"`) and
    /// `TTSNN_TENANT_RATES` a comma list of `tenant=per_sec[:burst]`
    /// pairs (burst defaults to `2 × per_sec`). Unparseable entries are
    /// ignored; with neither variable set, every tenant gets the default
    /// weight 1 and no rate limit.
    pub fn from_env() -> Self {
        let mut policy = FairPolicy::default();
        if let Ok(spec) = std::env::var("TTSNN_TENANT_WEIGHTS") {
            for entry in spec.split(',') {
                if let Some((t, w)) = entry.split_once('=') {
                    if let (Ok(t), Ok(w)) = (t.trim().parse::<TenantId>(), w.trim().parse::<f64>())
                    {
                        if w > 0.0 {
                            policy.tenants.entry(t).or_default().weight = w;
                        }
                    }
                }
            }
        }
        if let Ok(spec) = std::env::var("TTSNN_TENANT_RATES") {
            for entry in spec.split(',') {
                if let Some((t, r)) = entry.split_once('=') {
                    let (per_sec, burst) = match r.split_once(':') {
                        Some((p, b)) => (p.trim().parse::<f64>(), b.trim().parse::<f64>().ok()),
                        None => (r.trim().parse::<f64>(), None),
                    };
                    if let (Ok(t), Ok(p)) = (t.trim().parse::<TenantId>(), per_sec) {
                        if p > 0.0 {
                            let burst = burst.filter(|&b| b >= 1.0).unwrap_or(2.0 * p);
                            policy.tenants.entry(t).or_default().rate =
                                Some(RateLimit::new(p, burst));
                        }
                    }
                }
            }
        }
        policy
    }

    /// Validates the policy (all weights positive and finite, rates
    /// positive, bursts ≥ 1).
    pub(crate) fn validate(&self) -> Result<(), String> {
        let check_tenant = |t: &TenantPolicy| -> Result<(), String> {
            if !(t.weight.is_finite() && t.weight > 0.0) {
                return Err(format!("FairPolicy tenant weight must be positive: {}", t.weight));
            }
            if let Some(r) = t.rate {
                if !(r.per_sec.is_finite() && r.per_sec > 0.0) {
                    return Err(format!("FairPolicy rate must be positive: {}", r.per_sec));
                }
                if !(r.burst.is_finite() && r.burst >= 1.0) {
                    return Err(format!("FairPolicy burst must be at least 1: {}", r.burst));
                }
            }
            Ok(())
        };
        check_tenant(&self.default_tenant)?;
        for t in self.tenants.values() {
            check_tenant(t)?;
        }
        for &w in &self.priority_weights {
            if !(w.is_finite() && w > 0.0) {
                return Err(format!("FairPolicy priority weight must be positive: {w}"));
            }
        }
        Ok(())
    }
}

/// One admitted request, owned by the queue until popped into a batch.
pub(crate) struct Job {
    /// Global admission number — the FIFO tie-breaker.
    pub(crate) seq: u64,
    /// `(C, H, W)` or `(T, C, H, W)` input, validated by the executing
    /// replica.
    pub(crate) input: Tensor,
    /// Scheduling class.
    pub(crate) priority: Priority,
    /// Tenant the request is accounted (and fair-queued) against.
    pub(crate) tenant: TenantId,
    /// Absolute queueing deadline, if any.
    pub(crate) deadline: Option<Instant>,
    /// Set by `ClusterTicket::drop`; checked at pop and at batch close.
    pub(crate) cancelled: Arc<AtomicBool>,
    /// Where the logits (or the error) go.
    pub(crate) reply: Sender<Result<Tensor, InferError>>,
    /// Submission instant, for the latency histogram.
    pub(crate) submitted: Instant,
    /// Request-lifecycle trace id (`0` = untraced).
    pub(crate) trace: u64,
    /// Submission time on the obs clock (ns; 0 when untraced) — the
    /// `queue_wait` span's start.
    pub(crate) submit_ns: u64,
    /// When the job was popped into an open batch (set by `next_work`;
    /// splits `queue_wait` from `batch_form`).
    pub(crate) popped_ns: u64,
}

impl Job {
    /// Urgency key: priority class, then deadline (deadline-less last),
    /// then admission order. Smaller = more urgent.
    fn key(&self) -> (usize, Option<Instant>, u64) {
        (self.priority.index(), self.deadline, self.seq)
    }

    fn cmp_key(&self, other: &Self) -> CmpOrdering {
        let (pa, da, sa) = self.key();
        let (pb, db, sb) = other.key();
        pa.cmp(&pb)
            .then_with(|| match (da, db) {
                (Some(a), Some(b)) => a.cmp(&b),
                (Some(_), None) => CmpOrdering::Less,
                (None, Some(_)) => CmpOrdering::Greater,
                (None, None) => CmpOrdering::Equal,
            })
            .then_with(|| sa.cmp(&sb))
    }
}

impl PartialEq for Job {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Job {}
impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Job {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.cmp_key(other)
    }
}

/// One backlogged flow of the fair queue: the `(tenant, priority)` pair's
/// jobs in EDF order, plus its weight and virtual finish tag.
struct Flow {
    /// EDF within the flow: all jobs share a priority class, so [`Job`]'s
    /// ordering reduces to `(deadline, seq)` here.
    jobs: BinaryHeap<Reverse<Job>>,
    /// Virtual finish time of the flow's **next** service. Fixed when the
    /// flow becomes backlogged (`max(V, _) + 1/weight` — an idle period
    /// never banks credit) and advanced by `1/weight` per served job
    /// while the backlog lasts; never recomputed at pop time, which is
    /// what makes the share converge to the weight fraction.
    finish_tag: f64,
    /// `tenant.weight × priority_weights[class]`.
    weight: f64,
}

/// The batch-job queue in one of its two disciplines.
///
/// `Strict` is the original contract: priority classes absolutely
/// ordered, EDF within a class. `Fair` implements self-clocked weighted
/// fair queueing (SCFQ): each `(tenant, priority)` flow advances a shared
/// virtual clock by `1/weight` per served request, and the smallest
/// virtual finish tag is served next — so every flow's throughput share
/// converges to its weight fraction and no class or tenant can be starved.
enum JobQueue {
    Strict(BinaryHeap<Reverse<Job>>),
    Fair {
        policy: FairPolicy,
        /// Flows keyed by `(tenant, priority index)`. A `BTreeMap` keeps
        /// pop-time iteration (and therefore tie-breaks) deterministic.
        flows: BTreeMap<(TenantId, usize), Flow>,
        /// The SCFQ virtual clock: the finish tag of the last served job.
        virtual_time: f64,
    },
}

impl JobQueue {
    fn new(policy: Option<FairPolicy>) -> Self {
        match policy {
            None => JobQueue::Strict(BinaryHeap::new()),
            Some(policy) => JobQueue::Fair { policy, flows: BTreeMap::new(), virtual_time: 0.0 },
        }
    }

    fn len(&self) -> usize {
        match self {
            JobQueue::Strict(q) => q.len(),
            JobQueue::Fair { flows, .. } => flows.values().map(|f| f.jobs.len()).sum(),
        }
    }

    fn push(&mut self, job: Job) {
        match self {
            JobQueue::Strict(q) => q.push(Reverse(job)),
            JobQueue::Fair { policy, flows, virtual_time } => {
                let key = (job.tenant, job.priority.index());
                let flow = flows.entry(key).or_insert_with(|| {
                    let weight = policy.tenant(key.0).weight * policy.priority_weights[key.1];
                    Flow {
                        jobs: BinaryHeap::new(),
                        // Newly backlogged: one service quantum past the
                        // current clock.
                        finish_tag: *virtual_time + 1.0 / weight,
                        weight,
                    }
                });
                flow.jobs.push(Reverse(job));
            }
        }
    }

    /// Pops the next job under the queue's discipline (`None` when empty).
    fn pop(&mut self) -> Option<Job> {
        match self {
            JobQueue::Strict(q) => q.pop().map(|Reverse(job)| job),
            JobQueue::Fair { flows, virtual_time, .. } => {
                // Pick the backlogged flow with the smallest virtual
                // finish tag; ties break toward the more urgent class,
                // then the lower tenant id.
                let mut best: Option<((TenantId, usize), f64)> = None;
                for (&key, flow) in flows.iter() {
                    let tag = flow.finish_tag;
                    let better = match best {
                        None => true,
                        Some((bkey, btag)) => {
                            tag < btag || (tag == btag && (key.1, key.0) < (bkey.1, bkey.0))
                        }
                    };
                    if better {
                        best = Some((key, tag));
                    }
                }
                let (key, tag) = best?;
                *virtual_time = tag;
                let flow = flows.get_mut(&key).expect("chosen flow exists");
                let job = flow.jobs.pop().map(|Reverse(job)| job);
                if flow.jobs.is_empty() {
                    // Drop drained flows: pop-time iteration stays
                    // proportional to *backlogged* flows, and on
                    // re-activation the flow restarts from the clock (an
                    // idle flow banks no credit).
                    flows.remove(&key);
                } else {
                    flow.finish_tag = tag + 1.0 / flow.weight;
                }
                job
            }
        }
    }
}

/// Reason code of a `rejected` trace event: the bounded queue was full.
const REJECT_SATURATED: u64 = 1;
/// Reason code of a `rejected` trace event: the tenant's bucket was dry.
const REJECT_RATE_LIMITED: u64 = 2;

/// Makes an admission drop visible in the trace stream and in
/// `GET /debug/requests`. A rejected request never held queue state, and
/// both records land in bounded rings (the per-thread event ring and the
/// flight recorder's completion ring), so rejections can never leak
/// ring-buffer slots however many arrive.
fn record_rejected(opts: &SubmitOptions, reason: u64) {
    if opts.trace == 0 {
        return;
    }
    ttsnn_obs::record_instant(
        opts.trace,
        "rejected",
        ttsnn_obs::now_ns(),
        reason,
        u64::from(opts.tenant),
    );
    let status =
        if reason == REJECT_SATURATED { "rejected_saturated" } else { "rejected_rate_limited" };
    ttsnn_obs::record_completion(opts.trace, opts.tenant, status, 0);
}

/// One tenant's token bucket, refilled lazily at admission time.
struct TokenBucket {
    tokens: f64,
    refilled: Instant,
}

/// One replica-pinned streaming command. Unlike batch jobs (any replica
/// may serve any request), stream commands ride **per-replica FIFO
/// queues**: a session's membranes live on exactly one replica, and its
/// chunks must execute in feed order — reordering them would corrupt the
/// stream, so stream chunks have no priority classes.
pub(crate) enum StreamCmd {
    /// Register a session on the replica.
    Open {
        /// Session id.
        id: u64,
        /// Early-exit policy, fixed for the session's lifetime.
        opts: StreamOptions,
    },
    /// Execute (or, post-early-exit, skip) one chunk of timesteps.
    Feed {
        /// Session id.
        id: u64,
        /// `(C, H, W)` or `(n, C, H, W)` frames.
        chunk: Tensor,
        /// Absolute queueing deadline, if any: an expired chunk is
        /// dropped with `DeadlineExpired` and **the session is
        /// untouched** (no timestep was consumed).
        deadline: Option<Instant>,
        /// Where the any-time update (or the error) goes.
        reply: Sender<Result<StreamUpdate, InferError>>,
        /// Submission instant, for the latency histogram.
        submitted: Instant,
        /// Per-chunk trace id, minted at enqueue when tracing is on
        /// (`0` = untraced). Stream chunks are requests, so each gets
        /// `queue_wait` and `execute` spans like a batch member.
        trace: u64,
        /// Enqueue time on the obs clock (ns; 0 when untraced).
        submit_ns: u64,
    },
    /// Drop the session's resident state.
    Close {
        /// Session id.
        id: u64,
    },
}

/// What [`Scheduler::next_work`] hands a replica: a coalesced batch of
/// whole-stream requests, or one replica-pinned stream command. Stream
/// commands are served first — they are latency-sensitive (a live client
/// is mid-stream) and cannot be stolen by another replica.
pub(crate) enum Work {
    /// A batch formed from the shared priority queue.
    Batch(Vec<Job>),
    /// The replica's next stream command.
    Stream(StreamCmd),
}

struct State {
    /// The batch-job queue (strict priority or weighted-fair, per
    /// config).
    queue: JobQueue,
    /// Per-tenant admission token buckets (only tenants with a
    /// [`RateLimit`] appear here).
    buckets: BTreeMap<TenantId, TokenBucket>,
    /// Per-replica FIFO stream command queues (index = replica).
    streams: Vec<VecDeque<StreamCmd>>,
    /// Admitted, not yet terminal — the backpressure quantity. Stream
    /// chunks count here too: a saturated queue pushes back on streaming
    /// and whole-stream traffic alike.
    outstanding: usize,
    shutdown: bool,
    next_seq: u64,
    /// Next session id, and the round-robin cursor for replica pinning.
    next_stream_id: u64,
    /// Per-replica liveness heartbeat: when the replica last touched the
    /// scheduler loop (`None` before its first pull). Updated under the
    /// already-held state mutex, so the telemetry watchdog costs the hot
    /// path one `Instant` store.
    seen: Vec<Option<Instant>>,
    metrics: ClusterMetrics,
}

impl State {
    /// Retry-after hint for a saturation rejection: the measured mean
    /// service latency (one "slot" should free up in about that long),
    /// clamped to a sane band, with a 10 ms cold-start default.
    fn saturation_retry_after(&self) -> Duration {
        let mean = self.metrics.latency.mean();
        if mean > 0.0 {
            Duration::from_secs_f64(mean.clamp(0.001, 1.0))
        } else {
            Duration::from_millis(10)
        }
    }
}

/// The shared scheduler: sessions push, replicas pull batches, metrics
/// snapshot on demand. All state sits behind one mutex — every transition
/// is a few pointer moves, so contention is negligible next to a forward
/// pass.
pub(crate) struct Scheduler {
    capacity: usize,
    /// The fair policy, when overload control is on (also stored inside
    /// the queue; kept here for rate-limit lookups without matching).
    fair: Option<FairPolicy>,
    state: Mutex<State>,
    /// Signalled when work arrives (and on shutdown).
    work: Condvar,
    /// Signalled when outstanding drops (and on shutdown).
    space: Condvar,
}

impl Scheduler {
    pub(crate) fn new(capacity: usize, replicas: usize, fair: Option<FairPolicy>) -> Self {
        Self {
            capacity,
            fair: fair.clone(),
            state: Mutex::new(State {
                queue: JobQueue::new(fair),
                buckets: BTreeMap::new(),
                streams: (0..replicas).map(|_| VecDeque::new()).collect(),
                outstanding: 0,
                shutdown: false,
                next_seq: 0,
                next_stream_id: 0,
                seen: vec![None; replicas],
                metrics: ClusterMetrics::new(replicas),
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Charges one token from the tenant's bucket, or reports how long
    /// until the next token if the bucket is empty. No-op without a fair
    /// policy or without a rate limit for this tenant.
    fn charge_rate_locked(&self, st: &mut State, tenant: TenantId) -> Result<(), Duration> {
        let Some(limit) = self.fair.as_ref().and_then(|f| f.tenant(tenant).rate) else {
            return Ok(());
        };
        let now = Instant::now();
        // Tenant ids come off the wire: before growing the map for an
        // unseen tenant, drop buckets that have refilled to full burst —
        // a full bucket is indistinguishable from a fresh one, so this
        // bounds id-cycling clients to the set of *actively limited*
        // tenants instead of every id ever seen.
        if st.buckets.len() >= crate::metrics::MAX_TRACKED_TENANTS
            && !st.buckets.contains_key(&tenant)
        {
            if let Some(fair) = self.fair.as_ref() {
                st.buckets.retain(|&t, b| match fair.tenant(t).rate {
                    None => false,
                    Some(r) => {
                        let elapsed = now.saturating_duration_since(b.refilled).as_secs_f64();
                        b.tokens + elapsed * r.per_sec < r.burst
                    }
                });
            }
        }
        let bucket = st
            .buckets
            .entry(tenant)
            .or_insert_with(|| TokenBucket { tokens: limit.burst, refilled: now });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * limit.per_sec).min(limit.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64((1.0 - bucket.tokens) / limit.per_sec))
        }
    }

    fn enqueue_locked(
        &self,
        st: &mut State,
        input: Tensor,
        opts: SubmitOptions,
        reply: Sender<Result<Tensor, InferError>>,
    ) -> Arc<AtomicBool> {
        let now = Instant::now();
        let seq = st.next_seq;
        st.next_seq += 1;
        let cancelled = Arc::new(AtomicBool::new(false));
        st.metrics.priority_mut(opts.priority).submitted += 1;
        st.metrics.tenant_mut(opts.tenant).submitted += 1;
        st.outstanding += 1;
        st.queue.push(Job {
            seq,
            input,
            priority: opts.priority,
            tenant: opts.tenant,
            // Unrepresentable deadlines (`Duration::MAX`) mean "never".
            deadline: opts.deadline.and_then(|d| now.checked_add(d)),
            cancelled: cancelled.clone(),
            reply,
            submitted: now,
            trace: opts.trace,
            submit_ns: if opts.trace != 0 { ttsnn_obs::now_ns() } else { 0 },
            popped_ns: 0,
        });
        self.work.notify_all();
        cancelled
    }

    /// Admits a request, blocking while the queue is saturated. Rate
    /// limits still fail fast — a rate-limited tenant must back off, not
    /// camp on the queue lock.
    pub(crate) fn submit(
        &self,
        input: Tensor,
        opts: SubmitOptions,
        reply: Sender<Result<Tensor, InferError>>,
    ) -> Result<Arc<AtomicBool>, SubmitError> {
        let mut st = self.lock();
        loop {
            if st.shutdown {
                return Err(SubmitError::Closed);
            }
            if st.outstanding < self.capacity {
                if let Err(retry_after) = self.charge_rate_locked(&mut st, opts.tenant) {
                    st.metrics.tenant_mut(opts.tenant).rejected_rate_limited += 1;
                    record_rejected(&opts, REJECT_RATE_LIMITED);
                    return Err(SubmitError::RateLimited(RejectInfo {
                        tenant: opts.tenant,
                        priority: opts.priority,
                        retry_after,
                    }));
                }
                return Ok(self.enqueue_locked(&mut st, input, opts, reply));
            }
            st = self.space.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Admits a request or fails fast — the backpressure edge.
    pub(crate) fn try_submit(
        &self,
        input: Tensor,
        opts: SubmitOptions,
        reply: Sender<Result<Tensor, InferError>>,
    ) -> Result<Arc<AtomicBool>, SubmitError> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(SubmitError::Closed);
        }
        if st.outstanding >= self.capacity {
            st.metrics.tenant_mut(opts.tenant).rejected_saturated += 1;
            let retry_after = st.saturation_retry_after();
            record_rejected(&opts, REJECT_SATURATED);
            return Err(SubmitError::Saturated(RejectInfo {
                tenant: opts.tenant,
                priority: opts.priority,
                retry_after,
            }));
        }
        if let Err(retry_after) = self.charge_rate_locked(&mut st, opts.tenant) {
            st.metrics.tenant_mut(opts.tenant).rejected_rate_limited += 1;
            record_rejected(&opts, REJECT_RATE_LIMITED);
            return Err(SubmitError::RateLimited(RejectInfo {
                tenant: opts.tenant,
                priority: opts.priority,
                retry_after,
            }));
        }
        Ok(self.enqueue_locked(&mut st, input, opts, reply))
    }

    /// One request reached a terminal state: free its backpressure slot.
    fn finish_one(&self, st: &mut State) {
        st.outstanding -= 1;
        self.space.notify_all();
    }

    /// Pops the most urgent **live** job, reaping cancelled and expired
    /// entries on the way (they never reach an executor).
    fn pop_live(&self, st: &mut State, now: Instant) -> Option<Job> {
        while let Some(job) = st.queue.pop() {
            if job.cancelled.load(Ordering::SeqCst) {
                st.metrics.priority_mut(job.priority).cancelled += 1;
                st.metrics.tenant_mut(job.tenant).cancelled += 1;
                self.finish_one(st);
                continue;
            }
            if job.deadline.is_some_and(|d| now >= d) {
                st.metrics.priority_mut(job.priority).expired += 1;
                st.metrics.tenant_mut(job.tenant).expired += 1;
                let _ = job.reply.send(Err(InferError::DeadlineExpired));
                self.finish_one(st);
                continue;
            }
            return Some(job);
        }
        None
    }

    /// Pops the replica's next stream command, dropping expired feed
    /// chunks on the way (their sessions stay intact — an expired chunk
    /// consumed no timestep).
    fn pop_stream(&self, st: &mut State, replica: usize, now: Instant) -> Option<StreamCmd> {
        while let Some(cmd) = st.streams[replica].pop_front() {
            if let StreamCmd::Feed { deadline, reply, .. } = &cmd {
                if deadline.is_some_and(|d| now >= d) {
                    let _ = reply.send(Err(InferError::DeadlineExpired));
                    st.metrics.sessions.chunks_expired += 1;
                    self.finish_one(st);
                    continue;
                }
            }
            return Some(cmd);
        }
        None
    }

    /// Blocks for the replica's next unit of work. Stream commands win:
    /// they are replica-pinned, FIFO, and a waiting streaming client is
    /// by definition mid-request. With no stream command pending, forms a
    /// batch: waits for a first live request, then admits co-travellers
    /// until the batch holds `max_batch` requests, `max_wait` has elapsed
    /// since it opened (`Duration` values too large for `Instant`
    /// arithmetic, e.g. `Duration::MAX`, mean "hold until full"), or a
    /// stream command arrives for this replica (the batch closes early —
    /// the already-admitted requests execute, then the stream command is
    /// served). Returns `None` once the cluster shuts down; a shutdown
    /// mid-collection still returns the batch already admitted.
    ///
    /// Cancellation is re-checked when the batch closes, so a ticket
    /// dropped while its request sat in an open batch is still a
    /// cancellation, with a strong guarantee: a cancel that
    /// happened-before the batch closed is never executed.
    pub(crate) fn next_work(
        &self,
        replica: usize,
        max_batch: usize,
        max_wait: Duration,
    ) -> Option<Work> {
        let mut st = self.lock();
        loop {
            let first = loop {
                // Liveness heartbeat: the replica is provably inside the
                // scheduler loop (refreshed on every wake, so waiting for
                // work is not mistaken for being wedged).
                st.seen[replica] = Some(Instant::now());
                if let Some(cmd) = self.pop_stream(&mut st, replica, Instant::now()) {
                    return Some(Work::Stream(cmd));
                }
                if let Some(mut job) = self.pop_live(&mut st, Instant::now()) {
                    if job.trace != 0 {
                        job.popped_ns = ttsnn_obs::now_ns();
                    }
                    break job;
                }
                if st.shutdown {
                    return None;
                }
                st = self.work.wait(st).unwrap_or_else(|e| e.into_inner());
            };
            let mut batch = vec![first];
            let close_at = Instant::now().checked_add(max_wait);
            while batch.len() < max_batch && !st.shutdown && st.streams[replica].is_empty() {
                st.seen[replica] = Some(Instant::now());
                if let Some(mut job) = self.pop_live(&mut st, Instant::now()) {
                    if job.trace != 0 {
                        job.popped_ns = ttsnn_obs::now_ns();
                    }
                    batch.push(job);
                    continue;
                }
                match close_at {
                    None => st = self.work.wait(st).unwrap_or_else(|e| e.into_inner()),
                    Some(close) => {
                        let now = Instant::now();
                        if now >= close {
                            break;
                        }
                        st = self
                            .work
                            .wait_timeout(st, close - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                }
            }
            // Closing checks: cancellations and expiries that landed while
            // the batch was open must still be honoured — execution has
            // not started yet.
            let now = Instant::now();
            batch.retain(|job| {
                if job.cancelled.load(Ordering::SeqCst) {
                    st.metrics.priority_mut(job.priority).cancelled += 1;
                    st.metrics.tenant_mut(job.tenant).cancelled += 1;
                    self.finish_one(&mut st);
                    return false;
                }
                if job.deadline.is_some_and(|d| now >= d) {
                    st.metrics.priority_mut(job.priority).expired += 1;
                    st.metrics.tenant_mut(job.tenant).expired += 1;
                    let _ = job.reply.send(Err(InferError::DeadlineExpired));
                    self.finish_one(&mut st);
                    return false;
                }
                true
            });
            if !batch.is_empty() {
                // Close of batch formation: attribute each traced
                // member's wait so far to `queue_wait` (submit → pop) and
                // `batch_form` (pop → close).
                if batch.iter().any(|j| j.trace != 0) {
                    let close_ns = ttsnn_obs::now_ns();
                    let size = batch.len() as u64;
                    for job in &batch {
                        if job.trace == 0 {
                            continue;
                        }
                        let wait_ns = job.popped_ns.saturating_sub(job.submit_ns);
                        ttsnn_obs::record_span(
                            job.trace,
                            "queue_wait",
                            job.submit_ns,
                            wait_ns,
                            job.priority.index() as u64,
                            u64::from(job.tenant),
                        );
                        ttsnn_obs::record_stage(ttsnn_obs::Stage::QueueWait, wait_ns);
                        let form_ns = close_ns.saturating_sub(job.popped_ns);
                        ttsnn_obs::record_span(
                            job.trace,
                            "batch_form",
                            job.popped_ns,
                            form_ns,
                            size,
                            0,
                        );
                        ttsnn_obs::record_stage(ttsnn_obs::Stage::BatchForm, form_ns);
                    }
                }
                return Some(Work::Batch(batch));
            }
            // Everything admitted was cancelled/expired: open a new batch.
        }
    }

    /// Opens a streaming session: assigns a cluster-unique id, pins it to
    /// a replica round-robin, and queues the registration.
    pub(crate) fn open_stream(&self, opts: StreamOptions) -> Result<(u64, usize), SubmitError> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(SubmitError::Closed);
        }
        let id = st.next_stream_id;
        st.next_stream_id += 1;
        let replica = (id % st.streams.len() as u64) as usize;
        st.streams[replica].push_back(StreamCmd::Open { id, opts });
        st.metrics.sessions.opened += 1;
        self.work.notify_all();
        Ok((id, replica))
    }

    fn enqueue_stream_feed_locked(
        &self,
        st: &mut State,
        replica: usize,
        id: u64,
        chunk: Tensor,
        deadline: Option<Duration>,
        reply: Sender<Result<StreamUpdate, InferError>>,
    ) {
        let now = Instant::now();
        st.outstanding += 1;
        st.metrics.sessions.chunks_submitted += 1;
        let trace = if ttsnn_obs::enabled() { ttsnn_obs::next_trace_id() } else { 0 };
        st.streams[replica].push_back(StreamCmd::Feed {
            id,
            chunk,
            // Unrepresentable deadlines (`Duration::MAX`) mean "never".
            deadline: deadline.and_then(|d| now.checked_add(d)),
            reply,
            submitted: now,
            trace,
            submit_ns: if trace != 0 { ttsnn_obs::now_ns() } else { 0 },
        });
        self.work.notify_all();
    }

    /// Admits a stream chunk, blocking while the queue is saturated.
    pub(crate) fn submit_stream_chunk(
        &self,
        replica: usize,
        id: u64,
        chunk: Tensor,
        deadline: Option<Duration>,
        reply: Sender<Result<StreamUpdate, InferError>>,
    ) -> Result<(), SubmitError> {
        let mut st = self.lock();
        loop {
            if st.shutdown {
                return Err(SubmitError::Closed);
            }
            if st.outstanding < self.capacity {
                self.enqueue_stream_feed_locked(&mut st, replica, id, chunk, deadline, reply);
                return Ok(());
            }
            st = self.space.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Admits a stream chunk or fails fast — the backpressure edge for
    /// streaming clients.
    pub(crate) fn try_submit_stream_chunk(
        &self,
        replica: usize,
        id: u64,
        chunk: Tensor,
        deadline: Option<Duration>,
        reply: Sender<Result<StreamUpdate, InferError>>,
    ) -> Result<(), SubmitError> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(SubmitError::Closed);
        }
        if st.outstanding >= self.capacity {
            // Stream chunks carry no tenant (sessions are the accounting
            // unit there); report the default tenant's context.
            let retry_after = st.saturation_retry_after();
            return Err(SubmitError::Saturated(RejectInfo {
                tenant: 0,
                priority: Priority::Normal,
                retry_after,
            }));
        }
        self.enqueue_stream_feed_locked(&mut st, replica, id, chunk, deadline, reply);
        Ok(())
    }

    /// Queues a session close (from a `ClusterStreamSession` drop). Not a
    /// backpressure subject: closes free memory, so they must never be
    /// blocked by a saturated queue.
    pub(crate) fn close_stream(&self, replica: usize, id: u64) {
        let mut st = self.lock();
        if st.shutdown {
            return;
        }
        st.streams[replica].push_back(StreamCmd::Close { id });
        self.work.notify_all();
    }

    /// Records one executed batch: per-request served counts and
    /// submit→reply latencies, plus the batch-size sample.
    pub(crate) fn record_batch(
        &self,
        served: &[(Priority, TenantId, Duration)],
        batch_size: usize,
    ) {
        let mut st = self.lock();
        for &(priority, tenant, latency) in served {
            st.metrics.priority_mut(priority).served += 1;
            st.metrics.tenant_mut(tenant).served += 1;
            st.metrics.latency.record(latency.as_secs_f64());
            self.finish_one(&mut st);
        }
        st.metrics.batch_sizes.record(batch_size as f64);
        st.metrics.batches_executed += 1;
    }

    /// Records a replica's measured spike-density snapshot (after a
    /// completed batch). Last writer wins: the snapshot reflects the
    /// reporting replica's cumulative traffic.
    pub(crate) fn record_density(&self, per_layer: Vec<f64>, mean: Option<f64>) {
        let mut st = self.lock();
        st.metrics.spike_density = per_layer;
        st.metrics.mean_spike_density = mean;
    }

    /// Records a request rejected by plan validation (failed its own
    /// ticket inside an otherwise healthy batch).
    pub(crate) fn record_failed(&self, priority: Priority, tenant: TenantId) {
        let mut st = self.lock();
        st.metrics.priority_mut(priority).failed += 1;
        st.metrics.tenant_mut(tenant).failed += 1;
        self.finish_one(&mut st);
    }

    /// Records one served stream chunk: execution/skip accounting plus
    /// the submit→reply latency (stream chunks share the request latency
    /// histogram — they are requests).
    pub(crate) fn record_stream_chunk(&self, report: FeedReport, latency: Duration) {
        let mut st = self.lock();
        let s = &mut st.metrics.sessions;
        s.chunks_served += 1;
        s.timesteps_executed += report.executed;
        s.timesteps_skipped += report.skipped;
        s.macs_executed += report.macs_executed;
        s.macs_skipped += report.macs_skipped;
        st.metrics.latency.record(latency.as_secs_f64());
        self.finish_one(&mut st);
    }

    /// Records a rejected stream chunk (malformed, overrun, or dead
    /// session).
    pub(crate) fn record_stream_failed(&self) {
        let mut st = self.lock();
        st.metrics.sessions.chunks_failed += 1;
        self.finish_one(&mut st);
    }

    /// Records a replica's session-table state after it changed: live
    /// sessions, resident bytes, and how many sessions the bound just
    /// evicted.
    pub(crate) fn record_stream_state(
        &self,
        replica: usize,
        active: usize,
        resident_bytes: usize,
        evicted: u64,
    ) {
        let mut st = self.lock();
        let s = &mut st.metrics.sessions;
        s.active[replica] = active;
        s.resident_state_bytes[replica] = resident_bytes;
        s.evicted += evicted;
    }

    /// Records a session close served by a replica (`was_resident` is
    /// false when the session had already been evicted — it was counted
    /// then).
    pub(crate) fn record_stream_closed(&self, was_resident: bool) {
        if was_resident {
            let mut st = self.lock();
            st.metrics.sessions.closed += 1;
        }
    }

    /// Consistent snapshot for `Cluster::metrics`.
    pub(crate) fn metrics(&self) -> ClusterMetrics {
        let st = self.lock();
        let mut m = st.metrics.clone();
        m.queue_depth = st.queue.len();
        m.outstanding = st.outstanding;
        m.replica_heartbeat_age = st.seen.iter().map(|s| s.map(|at| at.elapsed())).collect();
        m
    }

    /// Stops admission and wakes everyone. Queued-but-unserved requests
    /// are dropped — their reply senders hang up, so waiting tickets
    /// report `InferError::EngineClosed`. Replicas finish the batch they
    /// already admitted, then exit.
    pub(crate) fn shutdown(&self) {
        let mut st = self.lock();
        st.shutdown = true;
        while st.queue.pop().is_some() {
            st.outstanding -= 1;
        }
        st.buckets.clear();
        // Queued stream commands are dropped too; only feeds hold a
        // backpressure slot (their reply senders hang up, so waiting
        // tickets report `InferError::EngineClosed`).
        let mut streams = std::mem::take(&mut st.streams);
        for q in &mut streams {
            while let Some(cmd) = q.pop_front() {
                if matches!(cmd, StreamCmd::Feed { .. }) {
                    st.outstanding -= 1;
                }
            }
        }
        st.streams = streams;
        self.work.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn job_input() -> Tensor {
        Tensor::zeros(&[1])
    }

    fn sched(capacity: usize) -> Scheduler {
        Scheduler::new(capacity, 1, None)
    }

    fn fair_sched(capacity: usize, fair: FairPolicy) -> Scheduler {
        Scheduler::new(capacity, 1, Some(fair))
    }

    /// Batch-only pull for the pre-streaming tests (replica 0; panics on
    /// stream work, which these tests never enqueue).
    fn next_batch(s: &Scheduler, max_batch: usize, max_wait: Duration) -> Option<Vec<Job>> {
        match s.next_work(0, max_batch, max_wait) {
            Some(Work::Batch(b)) => Some(b),
            Some(Work::Stream(_)) => panic!("unexpected stream work"),
            None => None,
        }
    }

    #[test]
    fn pops_by_priority_then_deadline_then_fifo() {
        let s = sched(16);
        let mut rxs = Vec::new();
        let mut submit = |prio, deadline_ms: Option<u64>| {
            let (tx, rx) = channel();
            rxs.push(rx);
            let opts = SubmitOptions {
                priority: prio,
                deadline: deadline_ms.map(Duration::from_millis),
                ..SubmitOptions::default()
            };
            s.submit(job_input(), opts, tx).unwrap()
        };
        let _ = submit(Priority::Low, None); // seq 0
        let _ = submit(Priority::Normal, None); // seq 1
        let _ = submit(Priority::Normal, Some(60_000)); // seq 2: deadlined beats FIFO
        let _ = submit(Priority::Normal, Some(30_000)); // seq 3: earlier deadline
        let _ = submit(Priority::High, None); // seq 4: class beats everything
        let batch = next_batch(&s, 16, Duration::ZERO).unwrap();
        let order: Vec<u64> = batch.iter().map(|j| j.seq).collect();
        assert_eq!(order, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn try_submit_saturates_at_capacity() {
        let s = sched(2);
        let (tx, _rx1) = channel();
        s.try_submit(job_input(), SubmitOptions::default(), tx).unwrap();
        let (tx, _rx2) = channel();
        s.try_submit(job_input(), SubmitOptions::default(), tx).unwrap();
        let (tx, _rx3) = channel();
        assert!(matches!(
            s.try_submit(job_input(), SubmitOptions::default(), tx).unwrap_err(),
            SubmitError::Saturated(_)
        ));
        // Outstanding counts until terminal, not until popped: forming a
        // batch alone must not admit more work...
        let batch = next_batch(&s, 8, Duration::ZERO).unwrap();
        let (tx, _rx4) = channel();
        assert!(matches!(
            s.try_submit(job_input(), SubmitOptions::default(), tx).unwrap_err(),
            SubmitError::Saturated(_)
        ));
        // ...serving it does.
        let served: Vec<(Priority, TenantId, Duration)> =
            batch.iter().map(|j| (j.priority, j.tenant, j.submitted.elapsed())).collect();
        s.record_batch(&served, batch.len());
        let (tx, _rx5) = channel();
        s.try_submit(job_input(), SubmitOptions::default(), tx).unwrap();
    }

    #[test]
    fn cancelled_jobs_are_reaped_not_returned() {
        let s = sched(8);
        let (tx, _rx) = channel();
        let cancel = s.submit(job_input(), SubmitOptions::default(), tx).unwrap();
        cancel.store(true, Ordering::SeqCst);
        let (tx, _rx2) = channel();
        let _ = s.submit(job_input(), SubmitOptions::default(), tx).unwrap();
        let batch = next_batch(&s, 8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1, "cancelled job must not reach an executor");
        let m = s.metrics();
        assert_eq!(m.priority(Priority::Normal).cancelled, 1);
        assert_eq!(m.outstanding, 1, "reaping a cancelled job frees its slot");
    }

    #[test]
    fn expired_jobs_reply_deadline_expired() {
        let s = sched(8);
        let (tx, rx) = channel();
        let opts = SubmitOptions::default().with_deadline(Duration::ZERO);
        let _c = s.submit(job_input(), opts, tx).unwrap();
        let (tx, _rx2) = channel();
        let _ = s.submit(job_input(), SubmitOptions::default(), tx).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let batch = next_batch(&s, 8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(rx.recv().unwrap(), Err(InferError::DeadlineExpired));
        assert_eq!(s.metrics().priority(Priority::Normal).expired, 1);
    }

    /// Pops jobs one at a time (batch size 1) until the queue is empty,
    /// recording each as served; returns `(priority, tenant)` in pop
    /// order.
    fn drain_order(s: &Scheduler) -> Vec<(Priority, TenantId)> {
        let mut order = Vec::new();
        loop {
            if s.metrics().queue_depth == 0 {
                break;
            }
            let batch = next_batch(s, 1, Duration::ZERO).unwrap();
            for j in &batch {
                order.push((j.priority, j.tenant));
            }
            let served: Vec<(Priority, TenantId, Duration)> =
                batch.iter().map(|j| (j.priority, j.tenant, j.submitted.elapsed())).collect();
            s.record_batch(&served, batch.len());
        }
        order
    }

    #[test]
    fn fair_queue_shares_slots_across_priorities() {
        // 24 High + 3 Low backlogged under weights [8, 3, 1]: strict
        // priority would serve every High before any Low; the fair queue
        // must give Low ~1 slot in 9 (weights 8 vs 1).
        let s = fair_sched(64, FairPolicy::default());
        for _ in 0..24 {
            let (tx, rx) = channel();
            std::mem::forget(rx);
            s.submit(job_input(), SubmitOptions::priority(Priority::High), tx).unwrap();
        }
        for _ in 0..3 {
            let (tx, rx) = channel();
            std::mem::forget(rx);
            s.submit(job_input(), SubmitOptions::priority(Priority::Low), tx).unwrap();
        }
        let order = drain_order(&s);
        assert_eq!(order.len(), 27);
        // All three Lows must be served before the backlog of Highs runs
        // out — i.e. within the first 3 * 9 = 27 pops, with the last Low
        // no later than position 27 and the first no later than ~10.
        let low_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| *p == Priority::Low)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(low_positions.len(), 3);
        assert!(
            low_positions[0] <= 10,
            "first Low must be served within one weight round, got position {}",
            low_positions[0]
        );
        // And High still dominates: at every prefix, more Highs than Lows
        // have been served.
        let mut highs = 0;
        let mut lows = 0;
        for (p, _) in &order {
            match p {
                Priority::High => highs += 1,
                Priority::Low => lows += 1,
                Priority::Normal => {}
            }
            assert!(highs >= lows, "High must keep its weighted lead");
        }
    }

    #[test]
    fn fair_queue_shares_slots_across_tenants_by_weight() {
        // Tenant 1 (weight 3) and tenant 2 (weight 1), both backlogged at
        // the same priority: served counts must track the 3:1 ratio at
        // every prefix (±1 slot of SCFQ discretization).
        let policy = FairPolicy::default()
            .with_tenant(1, TenantPolicy::weighted(3.0))
            .with_tenant(2, TenantPolicy::weighted(1.0));
        let s = fair_sched(64, policy);
        for _ in 0..24 {
            let (tx, rx) = channel();
            std::mem::forget(rx);
            s.submit(job_input(), SubmitOptions::default().with_tenant(1), tx).unwrap();
            let (tx, rx) = channel();
            std::mem::forget(rx);
            s.submit(job_input(), SubmitOptions::default().with_tenant(2), tx).unwrap();
        }
        let order = drain_order(&s);
        let mut t1 = 0usize;
        let mut t2 = 0usize;
        for (i, (_, tenant)) in order.iter().enumerate() {
            match tenant {
                1 => t1 += 1,
                2 => t2 += 1,
                _ => panic!("unexpected tenant"),
            }
            if i >= 8 && t2 > 0 && t1 + t2 <= 32 {
                // While both are backlogged (first 32 pops cover 24+8),
                // the ratio stays near 3:1.
                let ratio = t1 as f64 / t2 as f64;
                assert!(
                    (2.0..=4.5).contains(&ratio),
                    "tenant ratio {ratio} strayed from 3:1 at pop {i} (t1={t1}, t2={t2})"
                );
            }
        }
        assert_eq!(t1 + t2, 48);
    }

    #[test]
    fn rate_limit_rejects_when_bucket_empty_and_refills() {
        let policy = FairPolicy::default()
            .with_tenant(7, TenantPolicy::weighted(1.0).with_rate(RateLimit::new(50.0, 2.0)));
        let s = fair_sched(64, policy);
        // Burst of 2 admits; the third is rejected with a retry hint.
        for _ in 0..2 {
            let (tx, rx) = channel();
            std::mem::forget(rx);
            s.submit(job_input(), SubmitOptions::default().with_tenant(7), tx).unwrap();
        }
        let (tx, _rx) = channel();
        let err = s.submit(job_input(), SubmitOptions::default().with_tenant(7), tx).unwrap_err();
        let info = match err {
            SubmitError::RateLimited(info) => info,
            other => panic!("expected RateLimited, got {other:?}"),
        };
        assert_eq!(info.tenant, 7);
        assert!(info.retry_after > Duration::ZERO && info.retry_after <= Duration::from_millis(25));
        // Other tenants are unaffected.
        let (tx, rx) = channel();
        std::mem::forget(rx);
        s.submit(job_input(), SubmitOptions::default().with_tenant(8), tx).unwrap();
        // After the bucket refills (50/s ⇒ 20 ms per token), tenant 7
        // admits again.
        std::thread::sleep(Duration::from_millis(25));
        let (tx, rx) = channel();
        std::mem::forget(rx);
        s.submit(job_input(), SubmitOptions::default().with_tenant(7), tx).unwrap();
        let m = s.metrics();
        assert_eq!(m.tenant(7).submitted, 3);
        assert_eq!(m.tenant(7).rejected_rate_limited, 1);
        assert_eq!(m.tenant(8).submitted, 1);
    }

    #[test]
    fn saturated_rejection_carries_context() {
        let s = sched(1);
        let (tx, _rx1) = channel();
        s.try_submit(job_input(), SubmitOptions::default(), tx).unwrap();
        let (tx, _rx2) = channel();
        let err = s
            .try_submit(job_input(), SubmitOptions::priority(Priority::Low).with_tenant(9), tx)
            .unwrap_err();
        let info = err.reject_info().expect("saturation carries context");
        assert_eq!((info.tenant, info.priority), (9, Priority::Low));
        assert!(info.retry_after > Duration::ZERO);
        assert_eq!(s.metrics().tenant(9).rejected_saturated, 1);
    }

    #[test]
    fn fair_policy_env_parsing_and_validation() {
        let policy = FairPolicy::default()
            .with_tenant(1, TenantPolicy::weighted(4.0))
            .with_tenant(2, TenantPolicy::weighted(1.0).with_rate(RateLimit::new(100.0, 200.0)));
        assert!(policy.validate().is_ok());
        assert!(FairPolicy::default()
            .with_tenant(1, TenantPolicy::weighted(0.0))
            .validate()
            .is_err());
        assert!(FairPolicy::default()
            .with_tenant(1, TenantPolicy::weighted(1.0).with_rate(RateLimit::new(10.0, 0.5)))
            .validate()
            .is_err());
        assert!(FairPolicy::default().with_priority_weights([1.0, 0.0, 1.0]).validate().is_err());
    }

    #[test]
    fn replica_heartbeats_surface_in_metrics() {
        let s = sched(8);
        // Before any pull: no heartbeat recorded.
        assert_eq!(s.metrics().replica_heartbeat_age, vec![None]);
        let (tx, rx) = channel();
        std::mem::forget(rx);
        s.submit(job_input(), SubmitOptions::default(), tx).unwrap();
        let _ = next_batch(&s, 1, Duration::ZERO).unwrap();
        let ages = s.metrics().replica_heartbeat_age;
        assert_eq!(ages.len(), 1);
        let age = ages[0].expect("replica 0 pulled work");
        assert!(age < Duration::from_secs(5), "fresh heartbeat, got {age:?}");
    }

    #[test]
    fn shutdown_drains_queue_and_wakes_workers() {
        let s = Arc::new(sched(8));
        let (tx, rx) = channel();
        let _c = s.submit(job_input(), SubmitOptions::default(), tx).unwrap();
        let worker = {
            let s = Arc::clone(&s);
            // A worker asleep waiting for work (queue drained below before
            // it can look): must wake and exit on shutdown.
            std::thread::spawn(move || next_batch(&s, 8, Duration::from_secs(60)))
        };
        std::thread::sleep(Duration::from_millis(10));
        s.shutdown();
        // The sleeping worker either grabbed the job first (and must then
        // serve + record it, shutdown or not) or the shutdown drained it
        // (ticket sees a hang-up).
        match worker.join().unwrap() {
            None => assert!(rx.recv().is_err(), "drained job must hang up its ticket"),
            Some(batch) => {
                assert_eq!(batch.len(), 1);
                let served: Vec<(Priority, TenantId, Duration)> =
                    batch.iter().map(|j| (j.priority, j.tenant, j.submitted.elapsed())).collect();
                s.record_batch(&served, batch.len());
            }
        }
        assert_eq!(s.metrics().outstanding, 0);
        let (tx, _rx2) = channel();
        assert_eq!(
            s.submit(job_input(), SubmitOptions::default(), tx).unwrap_err(),
            SubmitError::Closed
        );
    }
}
