//! Property-based tests for the SNN substrate: LIF dynamics invariants and
//! augmentation safety over random inputs.

use proptest::prelude::*;
use ttsnn_autograd::Var;
use ttsnn_snn::augment::{flip_horizontal, nda_augment, translate};
use ttsnn_snn::{Lif, LifConfig};
use ttsnn_tensor::{Rng, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lif_spikes_always_binary(seed in 0u64..1000, tau in 0.05f32..1.0, vth in 0.1f32..1.5) {
        let mut rng = Rng::seed_from(seed);
        let mut lif = Lif::new(LifConfig { tau, vth, ..LifConfig::default() });
        for _ in 0..5 {
            let x = Var::constant(Tensor::randn(&[2, 6], &mut rng));
            let s = lif.step(&x).unwrap().to_tensor();
            prop_assert!(s.data().iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn lif_zero_input_never_fires_from_reset(seed in 0u64..500, tau in 0.05f32..1.0) {
        let mut rng = Rng::seed_from(seed);
        let mut lif = Lif::new(LifConfig { tau, vth: 0.5, ..LifConfig::default() });
        let _ = rng.next_u64();
        for _ in 0..4 {
            let s = lif.step(&Var::constant(Tensor::zeros(&[1, 4]))).unwrap();
            prop_assert_eq!(s.to_tensor().sum(), 0.0);
        }
    }

    #[test]
    fn lif_constant_suprathreshold_fires_every_step(v in 0.51f32..5.0) {
        let mut lif = Lif::new(LifConfig::default());
        for _ in 0..4 {
            let s = lif.step(&Var::constant(Tensor::full(&[1, 3], v))).unwrap();
            prop_assert_eq!(s.to_tensor().sum(), 3.0, "drive {} must fire", v);
        }
    }

    #[test]
    fn lif_reset_makes_steps_independent(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[1, 8], &mut rng);
        let mut lif = Lif::new(LifConfig::default());
        let first = lif.step(&Var::constant(x.clone())).unwrap().to_tensor();
        lif.step(&Var::constant(Tensor::randn(&[1, 8], &mut rng))).unwrap();
        lif.reset();
        let again = lif.step(&Var::constant(x)).unwrap().to_tensor();
        prop_assert_eq!(first, again);
    }

    #[test]
    fn flip_is_involution(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let f = Tensor::randn(&[2, 5, 7], &mut rng);
        prop_assert_eq!(flip_horizontal(&flip_horizontal(&f)), f);
    }

    #[test]
    fn translate_preserves_or_reduces_mass(seed in 0u64..500, dy in -4isize..4, dx in -4isize..4) {
        let mut rng = Rng::seed_from(seed);
        let f = Tensor::rand_uniform(&[1, 6, 6], 0.0, 1.0, &mut rng);
        let g = translate(&f, dy, dx);
        prop_assert!(g.sum() <= f.sum() + 1e-4, "translation must not create events");
        prop_assert_eq!(g.shape(), f.shape());
    }

    #[test]
    fn nda_never_creates_events(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let frames: Vec<Tensor> = (0..3)
            .map(|_| Tensor::rand_uniform(&[2, 8, 8], 0.0, 1.0, &mut rng).map(|v| v.round()))
            .collect();
        let total_before: f32 = frames.iter().map(|f| f.sum()).sum();
        let out = nda_augment(&frames, &mut rng);
        let total_after: f32 = out.iter().map(|f| f.sum()).sum();
        prop_assert!(total_after <= total_before + 1e-3);
        for f in &out {
            prop_assert!(f.data().iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }
}
