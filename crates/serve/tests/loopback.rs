//! Loopback tests: the full network serving plane over real sockets.
//!
//! The headline property: logits served over TCP are **bit-identical**
//! to an in-process submission against a separately loaded cluster of
//! the same checkpoint — across concurrent client connections, worker
//! threads, plans (f32 **and** int8), and replica counts (CI re-runs
//! this suite under `TTSNN_NUM_REPLICAS=1` and `3`). On top of that:
//! malformed, oversized, and protocol-violating frames are answered
//! in-band without killing the connection; deadline expiry and
//! saturation/rate-limit rejections travel as structured retryable
//! statuses; and `GET /metrics` serves valid Prometheus text exposition
//! with the per-tenant counters visible.

use std::time::Duration;

use ttsnn_core::TtMode;
use ttsnn_infer::{
    ClusterConfig, FairPolicy, Priority, QuantSpec, RateLimit, SubmitOptions, TenantPolicy,
};
use ttsnn_serve::wire::{Request, Status};
use ttsnn_serve::{http_get, Client, PlanSpec, Router, Server, ServerConfig, TelemetryOptions};
use ttsnn_snn::ConvPolicy;
use ttsnn_testutil::{samples, vgg_checkpoint, vgg_cluster_config};

const T: usize = 2;

fn policy() -> ConvPolicy {
    ConvPolicy::tt(TtMode::Ptt)
}

/// A deliberately *slow* plan (~5 ms per forward pass per timestep
/// block on a dev container): big enough frames that a handful of
/// queued requests reliably outlive the millisecond-scale deadlines and
/// sleeps the overload tests race against.
fn slow_plan(timesteps: usize) -> (Vec<u8>, ClusterConfig, [usize; 3]) {
    use ttsnn_snn::{checkpoint, SpikingModel, VggConfig, VggSnn};
    let cfg = VggConfig::vgg9(3, 10, (32, 32), 16);
    let model = VggSnn::new(cfg.clone(), &policy(), &mut ttsnn_tensor::Rng::seed_from(7));
    let mut ckpt = Vec::new();
    checkpoint::save_params(&model.params(), &mut ckpt).expect("serialize checkpoint");
    let config = ClusterConfig::new(
        ttsnn_infer::EngineConfig::new(ttsnn_infer::ArchSpec::Vgg(cfg), policy(), timesteps)
            .with_batching(ttsnn_infer::BatchPolicy { max_batch: 1, max_wait: Duration::ZERO }),
    )
    .with_replicas(1);
    (ckpt, config, [3, 32, 32])
}

fn slow_inputs(n: usize, seed: u64) -> Vec<ttsnn_tensor::Tensor> {
    let mut rng = ttsnn_tensor::Rng::seed_from(seed);
    (0..n).map(|_| ttsnn_tensor::Tensor::randn(&[3, 32, 32], &mut rng)).collect()
}

fn cluster_config(timesteps: usize, max_batch: usize) -> ClusterConfig {
    vgg_cluster_config(
        policy(),
        timesteps,
        ClusterConfig::replicas_from_env(),
        max_batch,
        Duration::from_millis(1),
    )
}

fn request(plan: &str, tenant: u32, priority: Priority, input: ttsnn_tensor::Tensor) -> Request {
    Request { trace: 0, tenant, priority, deadline_ms: 0, plan: plan.into(), input }
}

/// Socket answers == in-process answers, bit for bit, on both planes.
#[test]
fn socket_parity_with_in_process_cluster_f32_and_int8() {
    let (ckpt, _) = vgg_checkpoint(&policy(), 11);
    let calibration = samples(12, 4);
    let inputs = samples(13, 6);

    // In-process reference: clusters loaded *separately* from the same
    // checkpoint (the determinism contract makes load order, batching,
    // and concurrent traffic irrelevant to the bits).
    let expected = |quant: Option<QuantSpec>| -> Vec<Vec<u32>> {
        let cluster = match quant {
            Some(q) => {
                ttsnn_infer::Cluster::load_quantized(cluster_config(T, 4), q, ckpt.as_slice())
            }
            None => ttsnn_infer::Cluster::load(cluster_config(T, 4), ckpt.as_slice()),
        }
        .expect("load reference cluster");
        let session = cluster.session();
        inputs
            .iter()
            .map(|x| {
                session
                    .infer(x.clone())
                    .expect("reference inference")
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    };
    let expected_f32 = expected(None);
    let expected_int8 = expected(Some(QuantSpec::new(calibration.clone())));

    let router = Router::load(vec![
        PlanSpec {
            name: "vgg-f32".into(),
            config: cluster_config(T, 4),
            quant: None,
            checkpoint: ckpt.clone(),
        },
        PlanSpec {
            name: "vgg-int8".into(),
            config: cluster_config(T, 4),
            quant: Some(QuantSpec::new(calibration)),
            checkpoint: ckpt.clone(),
        },
    ])
    .expect("mount plans");
    let server = Server::bind(
        ServerConfig { workers: 3, telemetry: TelemetryOptions::from_env(), ..Default::default() },
        router,
    )
    .expect("bind server");
    let addr = server.addr();

    // Three concurrent client connections per plan, mixed priorities and
    // tenants, every response compared bit-for-bit.
    std::thread::scope(|scope| {
        for (plan, expected) in [("vgg-f32", &expected_f32), ("vgg-int8", &expected_int8)] {
            for client_id in 0..3u32 {
                let inputs = &inputs;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for (i, input) in inputs.iter().enumerate() {
                        if i as u32 % 3 != client_id {
                            continue;
                        }
                        let priority = Priority::ALL[i % 3];
                        let resp = client
                            .request(&request(plan, client_id, priority, input.clone()))
                            .expect("request");
                        assert_eq!(resp.status, Status::Ok, "{plan}: {}", resp.message);
                        let got: Vec<u32> = resp.logits.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(
                            got, expected[i],
                            "{plan} sample {i}: socket logits must be bit-identical"
                        );
                    }
                });
            }
        }
    });

    // The HTTP side: health probe (JSON readiness body, still 200-on-live)
    // and a valid Prometheus exposition with the per-tenant and histogram
    // series present.
    let (code, body) = http_get(addr, "/healthz").expect("healthz");
    assert_eq!(code, 200);
    assert!(body.starts_with("{\"status\":\"ok\""), "healthz is JSON-ish: {body}");
    for needle in
        ["\"uptime_seconds\":", "\"name\":\"vgg-f32\"", "\"replicas\":", "\"queue_depth\":"]
    {
        assert!(body.contains(needle), "healthz body missing {needle:?}: {body}");
    }
    let (code, page) = http_get(addr, "/metrics").expect("scrape");
    assert_eq!(code, 200);
    for needle in [
        "# TYPE ttsnn_requests_total counter",
        "# TYPE ttsnn_tenant_requests_total counter",
        "# TYPE ttsnn_request_latency_seconds histogram",
        "ttsnn_tenant_requests_total{plan=\"vgg-f32\",tenant=\"0\",state=\"served\"}",
        "ttsnn_request_latency_seconds_bucket{plan=\"vgg-int8\",le=\"+Inf\"}",
        "ttsnn_request_latency_seconds_count{plan=\"vgg-f32\"}",
        "# TYPE ttsnn_stream_sessions_total counter",
    ] {
        assert!(page.contains(needle), "metrics page missing {needle:?}:\n{page}");
    }
    // Every sample line must parse as `name{labels} value`.
    for line in page.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (series, v) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(v == "+Inf" || v.parse::<f64>().is_ok(), "unparsable value in line: {line}");
        assert!(!series.is_empty());
    }
    let (code, _) = http_get(addr, "/nope").expect("404 path");
    assert_eq!(code, 404);
}

/// Malformed, oversized, and protocol-violating frames each cost one
/// error response — the same connection then serves a real request,
/// bit-identical to in-process.
#[test]
fn bad_frames_do_not_kill_the_connection() {
    let (ckpt, _) = vgg_checkpoint(&policy(), 21);
    let input = samples(22, 1).remove(0);
    let reference = {
        let cluster = ttsnn_infer::Cluster::load(cluster_config(T, 2), ckpt.as_slice()).unwrap();
        cluster.session().infer(input.clone()).unwrap()
    };
    let router = Router::load(vec![PlanSpec {
        name: "vgg".into(),
        config: cluster_config(T, 2),
        quant: None,
        checkpoint: ckpt,
    }])
    .unwrap();
    let server = Server::bind(
        ServerConfig {
            workers: 2,
            max_frame_bytes: 4096,
            telemetry: TelemetryOptions::from_env(),
            ..Default::default()
        },
        router,
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Garbage body of a plausible length.
    let mut garbage = 16u32.to_le_bytes().to_vec();
    garbage.extend_from_slice(&[0xDE; 16]);
    let resp = client.send_raw(&garbage).expect("garbage answered in-band");
    assert_eq!(resp.status, Status::Malformed);

    // Oversized declared length: drained, reported, stream stays in sync.
    let mut oversized = 8192u32.to_le_bytes().to_vec();
    oversized.extend_from_slice(&vec![0x00; 8192]);
    let resp = client.send_raw(&oversized).expect("oversized answered in-band");
    assert_eq!(resp.status, Status::Malformed);
    assert!(resp.message.contains("8192"), "names the declared size: {}", resp.message);

    // A response frame where a request belongs.
    let stray = ttsnn_serve::wire::encode_response(&ttsnn_serve::wire::Response::ok(vec![1.0]));
    let resp = client.send_raw(&stray).expect("stray response answered in-band");
    assert_eq!(resp.status, Status::Malformed);

    // Unknown plan and bad shape are request-level errors, not hangups.
    let resp = client.request(&request("nope", 0, Priority::Normal, input.clone())).unwrap();
    assert_eq!(resp.status, Status::UnknownPlan);
    let bad_shape = ttsnn_tensor::Tensor::zeros(&[1, 2, 2]);
    let resp = client.request(&request("vgg", 0, Priority::Normal, bad_shape)).unwrap();
    assert_eq!(resp.status, Status::Shape);

    // The same connection still serves — bit-identical.
    let resp = client.request(&request("vgg", 0, Priority::Normal, input)).unwrap();
    assert_eq!(resp.status, Status::Ok, "{}", resp.message);
    assert_eq!(resp.logits.len(), reference.data().len());
    for (a, b) in resp.logits.iter().zip(reference.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// A deadlined request stuck behind higher-priority work expires on the
/// scheduler and comes back as `DeadlineExpired` — visible per tenant on
/// the next `/metrics` scrape.
#[test]
fn expired_deadline_travels_as_status_and_tenant_metric() {
    // Strict priority (no fair policy), one replica, batch-of-1: High
    // blockers provably run before the Low request, whose 1 ms deadline
    // expires while it waits (~10 ms per blocker on this plan).
    let (ckpt, config, _) = slow_plan(12);
    let inputs = slow_inputs(6, 32);
    let router = Router::load(vec![PlanSpec {
        name: "vgg-slow".into(),
        config,
        quant: None,
        checkpoint: ckpt,
    }])
    .unwrap();
    let server = Server::bind(
        ServerConfig { workers: 6, telemetry: TelemetryOptions::from_env(), ..Default::default() },
        router,
    )
    .unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        for input in inputs.iter().take(5).cloned() {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let resp = client.request(&request("vgg-slow", 1, Priority::High, input)).unwrap();
                assert_eq!(resp.status, Status::Ok, "{}", resp.message);
            });
        }
        // Give the blockers a head start into the queue, then race a
        // 1 ms-deadline Low request against ≥ 5 queued forward passes.
        std::thread::sleep(Duration::from_millis(5));
        let mut client = Client::connect(addr).unwrap();
        let req = Request {
            trace: 0,
            tenant: 42,
            priority: Priority::Low,
            deadline_ms: 1,
            plan: "vgg-slow".into(),
            input: inputs[5].clone(),
        };
        let resp = client.request(&req).unwrap();
        assert_eq!(resp.status, Status::DeadlineExpired, "{}", resp.message);
    });

    let (_, page) = http_get(addr, "/metrics").unwrap();
    assert!(
        page.contains(
            "ttsnn_tenant_requests_total{plan=\"vgg-slow\",tenant=\"42\",state=\"expired\"} 1"
        ),
        "expired request must be visible under its tenant:\n{page}"
    );
}

/// Overload comes back as structured, retryable statuses: saturation
/// carries the scheduler's retry-after hint, and a rate-limited tenant
/// is told so without the queue ever admitting the request.
#[test]
fn saturation_and_rate_limit_travel_as_retryable_statuses() {
    let (ckpt, config, _) = slow_plan(48); // ~40 ms per forward pass
    let inputs = slow_inputs(3, 42);
    let fair = FairPolicy::default()
        .with_tenant(5, TenantPolicy::default().with_rate(RateLimit { per_sec: 1.0, burst: 1.0 }));
    let config = config.with_queue_capacity(1).with_fair(fair);
    let router =
        Router::load(vec![PlanSpec { name: "vgg".into(), config, quant: None, checkpoint: ckpt }])
            .unwrap();
    let server = Server::bind(
        ServerConfig { workers: 3, telemetry: TelemetryOptions::from_env(), ..Default::default() },
        router,
    )
    .unwrap();
    let addr = server.addr();

    // Saturation: a slow request in flight fills the capacity-1 queue;
    // the next submission fails fast with the scheduler's structured
    // rejection context.
    std::thread::scope(|scope| {
        let blocker = inputs[0].clone();
        scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let resp = client.request(&request("vgg", 1, Priority::Normal, blocker)).unwrap();
            assert_eq!(resp.status, Status::Ok, "{}", resp.message);
        });
        std::thread::sleep(Duration::from_millis(10));
        let mut client = Client::connect(addr).unwrap();
        let resp = client.request(&request("vgg", 2, Priority::Normal, inputs[1].clone())).unwrap();
        assert_eq!(resp.status, Status::Saturated, "{}", resp.message);
        assert!(resp.retry_after_ms >= 1, "carries a retry-after hint");
        assert!(resp.message.contains("tenant 2"), "names the tenant: {}", resp.message);
    });

    // Rate limiting, with the queue now idle so saturation cannot mask
    // it: tenant 5's bucket holds one token, refilled at 1/s. The first
    // request drains it and is served (~40 ms — far too little refill),
    // so the second is rejected at admission, queue space or not.
    // (The blocker's reply lands a hair before its outstanding slot is
    // released — give the scheduler a beat to drain.)
    std::thread::sleep(Duration::from_millis(50));
    let mut client = Client::connect(addr).unwrap();
    let resp = client.request(&request("vgg", 5, Priority::Normal, inputs[1].clone())).unwrap();
    assert_eq!(resp.status, Status::Ok, "{}", resp.message);
    std::thread::sleep(Duration::from_millis(50)); // drain the served slot, not the bucket
    let resp = client.request(&request("vgg", 5, Priority::Normal, inputs[2].clone())).unwrap();
    assert_eq!(resp.status, Status::RateLimited, "{}", resp.message);
    assert!(resp.retry_after_ms >= 1);
    assert!(resp.message.contains("tenant 5"), "names the tenant: {}", resp.message);

    // The scrape shows both rejections under their tenants.
    let (_, page) = http_get(addr, "/metrics").unwrap();
    assert!(page.contains(
        "ttsnn_tenant_requests_total{plan=\"vgg\",tenant=\"2\",state=\"rejected_saturated\"} 1"
    ));
    assert!(page.contains(
        "ttsnn_tenant_requests_total{plan=\"vgg\",tenant=\"5\",state=\"rejected_rate_limited\"} 1"
    ));
}

/// `Router::drift` measures int8-vs-f32 drift online, on the live
/// mounted clusters.
#[test]
fn online_plan_drift_between_mounted_plans() {
    let (ckpt, _) = vgg_checkpoint(&policy(), 51);
    let calibration = samples(52, 4);
    let probes = samples(53, 5);
    let router = Router::load(vec![
        PlanSpec {
            name: "f32".into(),
            config: cluster_config(T, 4),
            quant: None,
            checkpoint: ckpt.clone(),
        },
        PlanSpec {
            name: "int8".into(),
            config: cluster_config(T, 4),
            quant: Some(QuantSpec::new(calibration)),
            checkpoint: ckpt,
        },
    ])
    .unwrap();
    let drift = router.drift("f32", "int8", &probes).expect("drift probe");
    assert_eq!(drift.requests, probes.len());
    assert!(drift.mean_abs_err.is_finite() && drift.mean_abs_err >= 0.0);
    assert!(drift.max_abs_err >= 0.0);
    assert!((0.0..=1.0).contains(&drift.agreement));
    // The probe itself generated traffic, so densities are measurable.
    assert!(drift.reference_density.is_some());
    assert!(drift.candidate_density.is_some());
    // Unknown plan names fail cleanly.
    assert!(router.drift("f32", "nope", &probes).is_err());

    // Determinism: the identical plan drifts zero against itself.
    let self_drift = router.drift("f32", "f32", &probes).unwrap();
    assert_eq!(self_drift.max_abs_err, 0.0);
    assert_eq!(self_drift.agreement, 1.0);
}

/// Stalled peers must not wedge the worker pool: a connection that
/// trickles fewer than 4 bytes and stops is dropped at the sniff
/// deadline, and a frame that stalls mid-body past the read timeout is
/// dropped as desynced — in both cases the (single) worker goes back to
/// serving well-behaved clients, and `Server::drop` joins cleanly.
#[test]
fn stalled_connections_do_not_wedge_workers() {
    use std::io::{Read, Write};

    let (ckpt, _) = vgg_checkpoint(&policy(), 71);
    let input = samples(72, 1).remove(0);
    let router = Router::load(vec![PlanSpec {
        name: "vgg".into(),
        config: cluster_config(T, 2),
        quant: None,
        checkpoint: ckpt,
    }])
    .unwrap();
    let server = Server::bind(
        ServerConfig {
            workers: 1,
            read_timeout: Duration::from_millis(50),
            telemetry: TelemetryOptions::from_env(),
            ..Default::default()
        },
        router,
    )
    .unwrap();
    let addr = server.addr();

    // 1–3 bytes then silence: without the sniff deadline this spins the
    // worker forever (the bytes are buffered, so no timeout ever fires).
    let mut sniff_staller = std::net::TcpStream::connect(addr).unwrap();
    sniff_staller.write_all(&[0x4E, 0x54]).unwrap();
    // The server closes without consuming the peeked bytes, which may
    // surface as a clean EOF or an RST — either way the connection dies.
    let mut sink = Vec::new();
    match sniff_staller.read_to_end(&mut sink) {
        Ok(_) => assert!(sink.is_empty(), "nothing was served to the staller"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }

    // The worker is free again: a real client gets served.
    let mut client = Client::connect(addr).unwrap();
    let resp = client.request(&request("vgg", 0, Priority::Normal, input.clone())).unwrap();
    assert_eq!(resp.status, Status::Ok, "{}", resp.message);
    drop(client);

    // A frame that stalls mid-body past the read timeout desyncs the
    // stream; the server must drop it rather than retry into garbage.
    let mut mid_frame_staller = std::net::TcpStream::connect(addr).unwrap();
    let mut partial = 64u32.to_le_bytes().to_vec();
    partial.extend_from_slice(&[0xAB; 10]); // 10 of the declared 64 bytes
    mid_frame_staller.write_all(&partial).unwrap();
    let mut sink = Vec::new();
    match mid_frame_staller.read_to_end(&mut sink) {
        Ok(_) => assert!(sink.is_empty(), "no response on a desynced stream"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }

    // Still serving afterwards, and Server::drop joins (the test would
    // hang here if a worker were wedged).
    let mut client = Client::connect(addr).unwrap();
    let resp = client.request(&request("vgg", 0, Priority::Normal, input)).unwrap();
    assert_eq!(resp.status, Status::Ok, "{}", resp.message);
}

/// In-process sanity for the submit-options plumbing the server uses.
#[test]
fn submit_options_round_trip_through_cluster() {
    let (ckpt, _) = vgg_checkpoint(&policy(), 61);
    let cluster = ttsnn_infer::Cluster::load(cluster_config(T, 2), ckpt.as_slice()).unwrap();
    let session = cluster.session();
    let opts = SubmitOptions::priority(Priority::High).with_tenant(9);
    let ticket = session.try_submit_with(samples(62, 1).remove(0), opts).unwrap();
    ticket.wait().unwrap();
    let m = ttsnn_testutil::drained_metrics(&cluster);
    assert_eq!(m.tenant(9).served, 1);
    assert_eq!(m.priority(Priority::High).served, 1);
}
