//! [`TtConv`] — the drop-in TT-decomposed spiking convolution module.
//!
//! One `TtConv` replaces one baseline 3×3 convolution (Fig. 1(a)) with the
//! four TT cores, and executes them according to the selected [`TtMode`]:
//! sequentially (STT), with the parallel branch sum of Eq. (5) (PTT), or
//! with the per-timestep full/half schedule (HTT). Strided layers (the
//! downsampling convolutions of MS-ResNet) are supported; the stride is
//! carried by the asymmetric cores so the factorization stays exact for
//! STT.

use ttsnn_autograd::Var;
use ttsnn_tensor::{conv, Conv2dGeometry, Rng, ShapeError, Tensor};

use crate::merge::{merge_ptt, merge_stt};
use crate::modes::TtMode;
use crate::ttsvd::{decompose, TtCores};

/// A TT-decomposed 3×3 convolution layer with trainable cores.
///
/// The layer owns four [`Var`] parameters (the cores `w1..w4` of Fig. 1)
/// and is timestep-aware: [`TtConv::forward`] takes the current timestep so
/// the HTT schedule can select the full or half path (Fig. 2).
///
/// ```
/// use ttsnn_core::{TtConv, TtMode};
/// use ttsnn_tensor::{Rng, Tensor};
///
/// # fn main() -> Result<(), ttsnn_tensor::ShapeError> {
/// let mut rng = Rng::seed_from(7);
/// let conv = TtConv::randn(8, 16, 4, TtMode::Stt, &mut rng);
/// let x = Tensor::randn(&[2, 8, 10, 10], &mut rng);
/// assert_eq!(conv.forward_tensor(&x, 0)?.shape(), &[2, 16, 10, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TtConv {
    w1: Var,
    w2: Var,
    w3: Var,
    w4: Var,
    mode: TtMode,
    stride: (usize, usize),
    in_channels: usize,
    out_channels: usize,
    rank: usize,
}

impl TtConv {
    /// Builds a layer from existing cores (e.g. produced by
    /// [`decompose`]) with stride 1.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the cores are internally inconsistent.
    pub fn from_cores(cores: TtCores, mode: TtMode) -> Result<Self, ShapeError> {
        Self::from_cores_strided(cores, mode, (1, 1))
    }

    /// Builds a layer from existing cores with an explicit stride.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the cores are internally inconsistent or
    /// the stride is zero.
    pub fn from_cores_strided(
        cores: TtCores,
        mode: TtMode,
        stride: (usize, usize),
    ) -> Result<Self, ShapeError> {
        cores.validate()?;
        if stride.0 == 0 || stride.1 == 0 {
            return Err(ShapeError::new("TtConv: stride must be positive"));
        }
        Ok(Self {
            in_channels: cores.in_channels(),
            out_channels: cores.out_channels(),
            rank: cores.rank(),
            w1: Var::param(cores.w1),
            w2: Var::param(cores.w2),
            w3: Var::param(cores.w3),
            w4: Var::param(cores.w4),
            mode,
            stride,
        })
    }

    /// Initializes from a dense pre-trained `(O, I, 3, 3)` weight via
    /// TT-SVD at the given rank (Algorithm 1, lines 3–5), stride 1.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `weight` is not `(O, I, 3, 3)` or
    /// `rank == 0`.
    pub fn from_dense(weight: &Tensor, rank: usize, mode: TtMode) -> Result<Self, ShapeError> {
        Self::from_cores(decompose(weight, rank)?, mode)
    }

    /// Random (Kaiming) initialization — training TT-SNN from scratch.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn randn(
        in_channels: usize,
        out_channels: usize,
        rank: usize,
        mode: TtMode,
        rng: &mut Rng,
    ) -> Self {
        Self::from_cores(TtCores::randn(in_channels, out_channels, rank, rng), mode)
            .expect("randn cores are always consistent")
    }

    /// Random initialization with stride (for MS-ResNet downsampling
    /// layers).
    ///
    /// # Panics
    ///
    /// Panics if any dimension or stride component is zero.
    pub fn randn_strided(
        in_channels: usize,
        out_channels: usize,
        rank: usize,
        mode: TtMode,
        stride: (usize, usize),
        rng: &mut Rng,
    ) -> Self {
        let mut cores = TtCores::randn(in_channels, out_channels, rank, rng);
        // `TtCores::randn` calibrates the *STT chain* (a 4-factor product)
        // to Kaiming scale. The PTT/HTT effective kernel of Eq. (6) is a
        // 3-factor product (`w1 · (w2 + w3) · w4`), so those modes need
        // their own calibration or their effective variance — and hence
        // their training dynamics — drifts from the dense baseline's.
        if !matches!(mode, TtMode::Stt) {
            let fan_in = (in_channels * 9) as f32;
            let target = (2.0 / fan_in).sqrt() * ((out_channels * in_channels * 9) as f32).sqrt();
            let actual = merge_ptt(&cores).expect("freshly built cores are consistent").norm();
            if actual > 1e-12 {
                // A common factor c on all four cores scales the 3-factor
                // PTT kernel by c^3.
                let scale = (target / actual).powf(1.0 / 3.0);
                cores.w1 = cores.w1.scale(scale);
                cores.w2 = cores.w2.scale(scale);
                cores.w3 = cores.w3.scale(scale);
                cores.w4 = cores.w4.scale(scale);
            }
        }
        Self::from_cores_strided(cores, mode, stride)
            .expect("randn cores are always consistent; stride validated by assert")
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Effective (possibly clamped) TT-rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The computation pipeline this layer runs.
    pub fn mode(&self) -> &TtMode {
        &self.mode
    }

    /// Convolution stride.
    pub fn stride(&self) -> (usize, usize) {
        self.stride
    }

    /// The four trainable core parameters, in `w1..w4` order.
    pub fn params(&self) -> Vec<Var> {
        vec![self.w1.clone(), self.w2.clone(), self.w3.clone(), self.w4.clone()]
    }

    /// Total trainable parameters (`r·I + 6r² + r·O`).
    pub fn num_params(&self) -> usize {
        let r = self.rank;
        r * self.in_channels + 6 * r * r + r * self.out_channels
    }

    /// Snapshot of the current core values.
    pub fn cores(&self) -> TtCores {
        TtCores {
            w1: self.w1.to_tensor(),
            w2: self.w2.to_tensor(),
            w3: self.w3.to_tensor(),
            w4: self.w4.to_tensor(),
        }
    }

    fn geometry_for(&self, hw: (usize, usize)) -> Geometries {
        let (sh, sw) = self.stride;
        let (h, w) = hw;
        let r = self.rank;
        let (oh, ow) = ((h + 2 - 3) / sh + 1, (w + 2 - 3) / sw + 1); // 3x3 pad 1
        Geometries {
            g1: Conv2dGeometry::new(self.in_channels, r, (h, w), (1, 1), (1, 1), (0, 0)),
            // STT: vertical core takes the vertical stride, horizontal core
            // the horizontal stride.
            g2_seq: Conv2dGeometry::new(r, r, (h, w), (3, 1), (sh, 1), (1, 0)),
            g3_seq: Conv2dGeometry::new(r, r, (oh, w), (1, 3), (1, sw), (0, 1)),
            // PTT: both branches consume w1's output and apply the full
            // stride so their outputs align for the sum of Eq. (5).
            g2_par: Conv2dGeometry::new(r, r, (h, w), (3, 1), (sh, sw), (1, 0)),
            g3_par: Conv2dGeometry::new(r, r, (h, w), (1, 3), (sh, sw), (0, 1)),
            g4: Conv2dGeometry::new(r, self.out_channels, (oh, ow), (1, 1), (1, 1), (0, 0)),
            // Half path: the 1x1 projection absorbs the stride.
            g1_half: Conv2dGeometry::new(self.in_channels, r, (h, w), (1, 1), (sh, sw), (0, 0)),
            g4_half: Conv2dGeometry::new(r, self.out_channels, (oh, ow), (1, 1), (1, 1), (0, 0)),
        }
    }

    /// Runs the layer on an autograd node at timestep `t` (Algorithm 1,
    /// lines 11–12). Output spatial size is `ceil(H/sh) × ceil(W/sw)` with
    /// the implicit 3×3/pad-1 geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x` is not `(B, I, H, W)`.
    pub fn forward(&self, x: &Var, t: usize) -> Result<Var, ShapeError> {
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(ShapeError::new(format!(
                "TtConv::forward: expected (B, {}, H, W), got {:?}",
                self.in_channels, shape
            )));
        }
        let g = self.geometry_for((shape[2], shape[3]));
        match (&self.mode, self.mode.is_full_at(t)) {
            (TtMode::Stt, _) => {
                let o = x.conv2d(&self.w1, g.g1)?;
                let o = o.conv2d(&self.w2, g.g2_seq)?;
                let o = o.conv2d(&self.w3, g.g3_seq)?;
                o.conv2d(&self.w4, g.g4)
            }
            (TtMode::Ptt, _) | (TtMode::Htt(_), true) => {
                let o = x.conv2d(&self.w1, g.g1)?;
                let vertical = o.conv2d(&self.w2, g.g2_par)?;
                let horizontal = o.conv2d(&self.w3, g.g3_par)?;
                vertical.add(&horizontal)?.conv2d(&self.w4, g.g4)
            }
            (TtMode::Htt(_), false) => {
                let o = x.conv2d(&self.w1, g.g1_half)?;
                o.conv2d(&self.w4, g.g4_half)
            }
        }
    }

    /// Forward on plain tensors with **no gradient tracking**: runs the
    /// sub-convolution chain directly on the runtime kernels, building no
    /// autograd graph — the inference path. Intermediates between cores
    /// come from the runtime's per-thread scratch-arena-backed conv
    /// pipeline, so a timestep loop allocates only its outputs.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] under the same conditions as
    /// [`TtConv::forward`].
    pub fn forward_tensor(&self, x: &Tensor, t: usize) -> Result<Tensor, ShapeError> {
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(ShapeError::new(format!(
                "TtConv::forward_tensor: expected (B, {}, H, W), got {:?}",
                self.in_channels, shape
            )));
        }
        let g = self.geometry_for((shape[2], shape[3]));
        let (w1, w2, w3, w4) = (self.w1.value(), self.w2.value(), self.w3.value(), self.w4.value());
        match (&self.mode, self.mode.is_full_at(t)) {
            (TtMode::Stt, _) => {
                let o = conv::conv2d(x, &w1, &g.g1)?;
                let o = conv::conv2d(&o, &w2, &g.g2_seq)?;
                let o = conv::conv2d(&o, &w3, &g.g3_seq)?;
                conv::conv2d(&o, &w4, &g.g4)
            }
            (TtMode::Ptt, _) | (TtMode::Htt(_), true) => {
                let o = conv::conv2d(x, &w1, &g.g1)?;
                let vertical = conv::conv2d(&o, &w2, &g.g2_par)?;
                let horizontal = conv::conv2d(&o, &w3, &g.g3_par)?;
                conv::conv2d(&vertical.add(&horizontal)?, &w4, &g.g4)
            }
            (TtMode::Htt(_), false) => {
                let o = conv::conv2d(x, &w1, &g.g1_half)?;
                conv::conv2d(&o, &w4, &g.g4_half)
            }
        }
    }

    /// Merges the trained cores back into one dense `(O, I, 3, 3)` kernel
    /// (Algorithm 1 lines 20–22 / Eq. (6)); STT layers use the full chain
    /// contraction, PTT/HTT layers the cross-kernel of Eq. (6).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the stored cores became inconsistent
    /// (cannot happen through this API).
    pub fn merge(&self) -> Result<Tensor, ShapeError> {
        let cores = self.cores();
        match self.mode {
            TtMode::Stt => merge_stt(&cores),
            TtMode::Ptt | TtMode::Htt(_) => merge_ptt(&cores),
        }
    }

    /// Forward MAC count for one sample at the given input size and
    /// timestep (used by the FLOPs accounting and by the accelerator
    /// model).
    pub fn macs(&self, in_hw: (usize, usize), t: usize) -> usize {
        let g = self.geometry_for(in_hw);
        match (&self.mode, self.mode.is_full_at(t)) {
            (TtMode::Stt, _) => g.g1.macs() + g.g2_seq.macs() + g.g3_seq.macs() + g.g4.macs(),
            (TtMode::Ptt, _) | (TtMode::Htt(_), true) => {
                g.g1.macs() + g.g2_par.macs() + g.g3_par.macs() + g.g4.macs()
            }
            (TtMode::Htt(_), false) => g.g1_half.macs() + g.g4_half.macs(),
        }
    }
}

struct Geometries {
    g1: Conv2dGeometry,
    g2_seq: Conv2dGeometry,
    g3_seq: Conv2dGeometry,
    g2_par: Conv2dGeometry,
    g3_par: Conv2dGeometry,
    g4: Conv2dGeometry,
    g1_half: Conv2dGeometry,
    g4_half: Conv2dGeometry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttsnn_tensor::conv;

    #[test]
    fn output_shapes_all_modes() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[2, 6, 8, 8], &mut rng);
        for mode in [TtMode::Stt, TtMode::Ptt, TtMode::htt_default(4)] {
            let layer = TtConv::randn(6, 10, 4, mode.clone(), &mut rng);
            for t in 0..4 {
                let y = layer.forward_tensor(&x, t).unwrap();
                assert_eq!(y.shape(), &[2, 10, 8, 8], "mode {mode} t {t}");
            }
        }
    }

    #[test]
    fn strided_output_shapes() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[1, 4, 8, 8], &mut rng);
        for mode in [TtMode::Stt, TtMode::Ptt, TtMode::htt_default(4)] {
            let layer = TtConv::randn_strided(4, 8, 3, mode.clone(), (2, 2), &mut rng);
            for t in [0usize, 3] {
                let y = layer.forward_tensor(&x, t).unwrap();
                assert_eq!(y.shape(), &[1, 8, 4, 4], "mode {mode} t {t}");
            }
        }
    }

    #[test]
    fn stt_forward_matches_merged_dense_conv() {
        let mut rng = Rng::seed_from(3);
        let layer = TtConv::randn(5, 7, 3, TtMode::Stt, &mut rng);
        let x = Tensor::randn(&[2, 5, 6, 6], &mut rng);
        let via_tt = layer.forward_tensor(&x, 0).unwrap();
        let dense = layer.merge().unwrap();
        let g = Conv2dGeometry::new(5, 7, (6, 6), (3, 3), (1, 1), (1, 1));
        let via_dense = conv::conv2d(&x, &dense, &g).unwrap();
        assert!(via_tt.max_abs_diff(&via_dense).unwrap() < 1e-3);
    }

    #[test]
    fn ptt_forward_matches_merged_dense_conv() {
        let mut rng = Rng::seed_from(4);
        let layer = TtConv::randn(4, 6, 3, TtMode::Ptt, &mut rng);
        let x = Tensor::randn(&[1, 4, 7, 7], &mut rng);
        let via_tt = layer.forward_tensor(&x, 0).unwrap();
        let dense = layer.merge().unwrap();
        let g = Conv2dGeometry::new(4, 6, (7, 7), (3, 3), (1, 1), (1, 1));
        let via_dense = conv::conv2d(&x, &dense, &g).unwrap();
        assert!(via_tt.max_abs_diff(&via_dense).unwrap() < 1e-3);
    }

    #[test]
    fn strided_stt_matches_merged_strided_dense() {
        let mut rng = Rng::seed_from(5);
        let layer = TtConv::randn_strided(4, 5, 3, TtMode::Stt, (2, 2), &mut rng);
        let x = Tensor::randn(&[1, 4, 9, 9], &mut rng);
        let via_tt = layer.forward_tensor(&x, 0).unwrap();
        let dense = layer.merge().unwrap();
        let g = Conv2dGeometry::new(4, 5, (9, 9), (3, 3), (2, 2), (1, 1));
        let via_dense = conv::conv2d(&x, &dense, &g).unwrap();
        assert!(via_tt.max_abs_diff(&via_dense).unwrap() < 1e-3);
    }

    #[test]
    fn htt_half_path_uses_fewer_macs() {
        let mut rng = Rng::seed_from(6);
        let layer = TtConv::randn(16, 16, 8, TtMode::htt_default(4), &mut rng);
        let full = layer.macs((8, 8), 0);
        let half = layer.macs((8, 8), 3);
        assert!(half < full, "half path {half} should be cheaper than full {full}");
        // Half path has no 3x1/1x3 cores: exactly r*I*HW + r*O*HW
        assert_eq!(half, 8 * 16 * 64 + 8 * 16 * 64);
    }

    #[test]
    fn htt_timestep_dependence() {
        let mut rng = Rng::seed_from(7);
        let layer = TtConv::randn(4, 4, 2, TtMode::htt_default(2), &mut rng);
        let x = Tensor::randn(&[1, 4, 5, 5], &mut rng);
        let early = layer.forward_tensor(&x, 0).unwrap();
        let late = layer.forward_tensor(&x, 1).unwrap();
        // Full vs half path differ (PTT includes asymmetric cores).
        assert!(early.max_abs_diff(&late).unwrap() > 1e-6);
    }

    #[test]
    fn gradients_reach_all_cores() {
        let mut rng = Rng::seed_from(8);
        for mode in [TtMode::Stt, TtMode::Ptt] {
            let layer = TtConv::randn(3, 4, 2, mode, &mut rng);
            let x = Var::constant(Tensor::randn(&[1, 3, 5, 5], &mut rng));
            let y = layer.forward(&x, 0).unwrap();
            y.sum_to_scalar().backward();
            for (i, p) in layer.params().iter().enumerate() {
                let g = p.grad().unwrap_or_else(|| panic!("core w{} got no grad", i + 1));
                assert!(g.norm() > 0.0, "core w{} grad is zero", i + 1);
            }
        }
    }

    #[test]
    fn htt_half_timestep_skips_asymmetric_core_grads() {
        let mut rng = Rng::seed_from(9);
        let layer = TtConv::randn(3, 4, 2, TtMode::htt_default(2), &mut rng);
        let x = Var::constant(Tensor::randn(&[1, 3, 5, 5], &mut rng));
        let y = layer.forward(&x, 1).unwrap(); // half timestep
        y.sum_to_scalar().backward();
        let params = layer.params();
        assert!(params[0].grad().is_some(), "w1 must receive grad on half path");
        assert!(params[1].grad().is_none(), "w2 unused on half path");
        assert!(params[2].grad().is_none(), "w3 unused on half path");
        assert!(params[3].grad().is_some(), "w4 must receive grad on half path");
    }

    #[test]
    fn from_dense_approximates_original() {
        let mut rng = Rng::seed_from(10);
        // Low-TT-rank ground truth decomposes exactly.
        let truth = TtCores::randn(6, 6, 3, &mut rng);
        let dense = crate::merge::merge_stt(&truth).unwrap();
        let layer = TtConv::from_dense(&dense, 3, TtMode::Stt).unwrap();
        let x = Tensor::randn(&[1, 6, 6, 6], &mut rng);
        let g = Conv2dGeometry::new(6, 6, (6, 6), (3, 3), (1, 1), (1, 1));
        let want = conv::conv2d(&x, &dense, &g).unwrap();
        let got = layer.forward_tensor(&x, 0).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-2);
    }

    #[test]
    fn num_params_matches_formula_and_cores() {
        let mut rng = Rng::seed_from(11);
        let layer = TtConv::randn(16, 32, 8, TtMode::Ptt, &mut rng);
        assert_eq!(layer.num_params(), 8 * 16 + 6 * 64 + 8 * 32);
        assert_eq!(layer.num_params(), layer.cores().num_params());
    }

    #[test]
    fn forward_rejects_wrong_channels() {
        let mut rng = Rng::seed_from(12);
        let layer = TtConv::randn(4, 4, 2, TtMode::Stt, &mut rng);
        let x = Tensor::zeros(&[1, 5, 6, 6]);
        assert!(layer.forward_tensor(&x, 0).is_err());
        assert!(layer.forward_tensor(&Tensor::zeros(&[4, 6, 6]), 0).is_err());
    }

    #[test]
    fn accessors() {
        let mut rng = Rng::seed_from(13);
        let layer = TtConv::randn_strided(4, 8, 3, TtMode::Ptt, (2, 1), &mut rng);
        assert_eq!(layer.in_channels(), 4);
        assert_eq!(layer.out_channels(), 8);
        assert_eq!(layer.rank(), 3);
        assert_eq!(layer.stride(), (2, 1));
        assert_eq!(layer.mode().name(), "PTT");
    }
}
