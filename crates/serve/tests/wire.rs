//! Wire-protocol robustness: property-based round-trips and mutation
//! fuzzing.
//!
//! The contract under test: encoding any request or response and
//! decoding it back is lossless **bit for bit** (tensor payloads and
//! logits travel as raw f32 bits — NaNs and `-0.0` included), and
//! `decode_frame` / `read_frame` never panic on arbitrary or corrupted
//! bytes — a malformed frame is a value-level error the server answers
//! in-band, never a crash or a desynced stream.

use proptest::prelude::*;
use ttsnn_infer::Priority;
use ttsnn_serve::wire::{
    decode_frame, encode_request, encode_response, read_frame, Frame, FrameReadError, Request,
    Response, Status, DEFAULT_MAX_FRAME_BYTES,
};
use ttsnn_tensor::Tensor;

fn plan_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('k'), Just('z'), Just('0'), Just('9'), Just('-'), Just('é')],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Arbitrary f32 *bit patterns* — exercises NaN payloads, infinities,
/// subnormals, and `-0.0`, which all must survive the wire unchanged.
fn payload(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((0u32..=u32::MAX).prop_map(f32::from_bits), len)
}

fn assert_bits(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "payload bits must survive the wire");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_round_trips_bit_exact(
        tenant in 0u32..=u32::MAX,
        pidx in 0usize..3,
        deadline_ms in 0u32..120_000,
        plan in plan_name(),
        (c, h, w) in (1usize..4, 1usize..5, 1usize..5),
        data in payload(1..80),
    ) {
        let elems = c * h * w;
        let mut data = data;
        data.resize(elems, -0.0);
        let req = Request {
            trace: 0,
            tenant,
            priority: Priority::ALL[pidx],
            deadline_ms,
            plan: plan.clone(),
            input: Tensor::from_vec(data.clone(), &[c, h, w]).unwrap(),
        };
        let frame = encode_request(&req);
        let mut r = frame.as_slice();
        let body = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
        prop_assert!(r.is_empty());
        let Frame::Request(out) = decode_frame(&body, DEFAULT_MAX_FRAME_BYTES).unwrap() else {
            panic!("expected request frame")
        };
        prop_assert_eq!(out.tenant, tenant);
        prop_assert_eq!(out.priority, Priority::ALL[pidx]);
        prop_assert_eq!(out.deadline_ms, deadline_ms);
        prop_assert_eq!(out.plan, plan);
        prop_assert_eq!(out.input.shape(), &[c, h, w][..]);
        assert_bits(out.input.data(), &data);
    }

    #[test]
    fn response_round_trips_bit_exact(
        status in 0u8..9,
        retry in 0u32..=u32::MAX,
        logits in payload(0..20),
    ) {
        let resp = Response {
            trace: 0,
            status: Status::from_u8(status).unwrap(),
            retry_after_ms: retry,
            message: format!("status {status}"),
            logits: logits.clone(),
        };
        let frame = encode_response(&resp);
        let body = read_frame(&mut frame.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
        let Frame::Response(out) = decode_frame(&body, DEFAULT_MAX_FRAME_BYTES).unwrap() else {
            panic!("expected response frame")
        };
        prop_assert_eq!(out.status, resp.status);
        prop_assert_eq!(out.retry_after_ms, retry);
        prop_assert_eq!(out.message, resp.message);
        assert_bits(&out.logits, &logits);
    }

    /// Arbitrary bodies must decode to `Ok` or `Err` — never panic.
    #[test]
    fn decode_never_panics_on_garbage(body in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = decode_frame(&body, DEFAULT_MAX_FRAME_BYTES);
    }

    /// Flipping any byte of a valid frame body must still never panic,
    /// and whatever still decodes must be a well-formed frame value.
    #[test]
    fn decode_never_panics_on_mutations(
        seed in payload(4..10),
        idx in 0usize..1000,
        bit in 0u8..8,
    ) {
        let n = seed.len();
        let req = Request {
            trace: 0,
            tenant: 3,
            priority: Priority::Normal,
            deadline_ms: 10,
            plan: "p".into(),
            input: Tensor::from_vec(seed, &[1, 1, n]).unwrap(),
        };
        let mut body = encode_request(&req)[4..].to_vec(); // strip length prefix
        let idx = idx % body.len();
        body[idx] ^= 1 << bit;
        if let Ok(Frame::Request(r)) = decode_frame(&body, DEFAULT_MAX_FRAME_BYTES) {
            // A surviving decode must still be internally consistent.
            prop_assert!(r.input.shape().len() == 3 || r.input.shape().len() == 4);
        }
    }

    /// A truncated stream errors cleanly at every cut point.
    #[test]
    fn truncated_frames_error_cleanly(cut in 0usize..1000) {
        let frame = encode_response(&Response::ok(vec![1.0, 2.0, 3.0]));
        let cut = cut % frame.len();
        let mut r = &frame[..cut];
        match read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Ok(Some(_)) => prop_assert!(false, "truncated frame must not parse"),
            Err(FrameReadError::Io(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error {}", e),
        }
    }
}

/// An oversized frame is drained, reported, and the stream stays usable.
#[test]
fn oversized_frame_drains_and_stream_resyncs() {
    let good = encode_response(&Response::error(Status::Ok, 0, ""));
    let mut stream = Vec::new();
    stream.extend_from_slice(&(4096u32).to_le_bytes());
    stream.extend_from_slice(&vec![0x5A; 4096]);
    stream.extend_from_slice(&good);
    let mut r = stream.as_slice();
    match read_frame(&mut r, 1024) {
        Err(FrameReadError::Oversized { declared, max }) => {
            assert_eq!((declared, max), (4096, 1024));
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
    let body = read_frame(&mut r, 1024).unwrap().unwrap();
    assert!(matches!(decode_frame(&body, DEFAULT_MAX_FRAME_BYTES), Ok(Frame::Response(_))));
    assert!(r.is_empty());
}
