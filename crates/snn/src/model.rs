//! The model API, split into two **execution planes**.
//!
//! * [`SpikingModel`] — the structural trait: parameters, state reset,
//!   naming and MAC accounting. Everything that is true of a network
//!   regardless of how it is executed.
//! * [`TrainForward`] — the training plane: timestep forward on autograd
//!   [`Var`]s, building the BPTT tape the trainers differentiate
//!   (Algorithm 1, lines 7–15).
//! * [`InferForward`] — the inference plane: timestep forward on plain
//!   [`Tensor`]s. No autograd nodes are allocated (a property
//!   `crates/snn/tests/infer_parity.rs` pins with the
//!   `ttsnn_autograd::nodes_created` counter), intermediates ride the
//!   runtime's per-thread scratch arenas, and the plane carries the
//!   serving-side determinism contract via [`InferStats`].
//! * [`Model`] — the blanket-implemented combination of both planes; the
//!   trainers take `&mut dyn Model` so one network object can train and
//!   then serve.
//!
//! # Why two planes
//!
//! The paper's deployment story is train once, serve cheaply (optionally
//! after merging TT cores back into dense kernels). A `Var` forward
//! allocates one tape node per op per timestep — pure waste when nothing
//! will ever call `backward()`. The inference plane runs the identical
//! arithmetic straight on the runtime kernels: in [`InferStats::Batch`]
//! mode it is **bit-identical** to the training plane on the same batch,
//! which is what lets [`crate::trainer::evaluate`] route through it
//! without changing a single reported number.

use ttsnn_autograd::Var;
use ttsnn_tensor::runtime::{self, Runtime};
use ttsnn_tensor::spike::{self, SparseMode};
use ttsnn_tensor::{ShapeError, Tensor};

/// Which statistics — and which batching semantics — the inference plane
/// uses. See the variants for the exact contract; both coincide at batch
/// size 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferStats {
    /// Faithful to the training plane: normalization statistics are
    /// computed per channel over the **whole batch** (exactly like
    /// `Var::batch_norm2d`) and the classifier GEMM runs batched. Output
    /// logits are bit-identical to [`TrainForward`] on the same batch —
    /// the mode [`crate::trainer::evaluate`] uses.
    #[default]
    Batch,
    /// Serving mode: every sample is processed **exactly as if it were
    /// alone in the batch** — normalization statistics per sample, the
    /// classifier GEMM row by row. Per-sample outputs are therefore
    /// invariant to how requests were coalesced into batches (the
    /// `ttsnn_infer` engine's determinism contract) and bit-identical to a
    /// batch-size-1 [`TrainForward`] pass on that sample.
    PerSample,
}

/// The structural view of a timestep-unrolled spiking network: what every
/// consumer — trainer, serving engine, FLOPs accounting — needs regardless
/// of the execution plane.
///
/// Implementations hold LIF membrane state between timestep calls on
/// either plane; the driver performs the unrolling: reset, then one
/// forward per timestep, then (on the training plane) a loss on the
/// accumulated logits and one `backward()` spanning the whole
/// spatio-temporal graph.
pub trait SpikingModel {
    /// All trainable parameters.
    fn params(&self) -> Vec<Var>;

    /// Clears all membrane state on **both** planes (must be called
    /// between batches).
    fn reset_state(&mut self);

    /// Total trainable parameter count.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.value().len()).sum()
    }

    /// Human-readable architecture name.
    fn name(&self) -> String;

    /// Forward MAC count for one sample at timestep `t` (for FLOPs
    /// reporting on the *constructed* network, complementing the analytic
    /// full-size specs in `ttsnn_core::flops`).
    fn macs_at(&self, t: usize) -> usize;

    /// Mean spike activity observed across all LIF layers since training
    /// started (spikes per neuron per timestep), or `None` if the model
    /// has not run. Default: not tracked.
    fn mean_spike_activity(&self) -> Option<f64> {
        None
    }

    /// Measured spike density of every LIF layer in network order
    /// (spikes per neuron per timestep, from the layers' activity
    /// counters), or an empty vector if the model does not track
    /// activity. Layers that have not fired a single step yet report
    /// `0.0`. This is the per-layer statistic the serving plane surfaces
    /// so operators can see how sparse traffic actually is — and whether
    /// the density-adaptive dispatcher will route it to the event-driven
    /// kernels. Default: not tracked.
    fn layer_spike_densities(&self) -> Vec<f64> {
        Vec::new()
    }
}

/// The **training plane**: timestep forward on autograd [`Var`]s,
/// recording the BPTT tape.
pub trait TrainForward: SpikingModel {
    /// Processes the input frame at timestep `t`, returning `(B, K)`
    /// logits for this timestep as a graph node.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input does not match the architecture.
    fn forward_timestep(&mut self, x: &Var, t: usize) -> Result<Var, ShapeError>;
}

/// A snapshot of a model's **inference-plane** recurrent state: every LIF
/// layer's membrane tensor, in network order, moved (never copied) out of
/// the model. This is what the serving layer pins per streaming session —
/// take the state after a chunk, restore it before the next, and the
/// resumed unrolling is **bit-identical** to one that never paused
/// (pinned by `crates/snn/tests/stream_state.rs`).
///
/// The snapshot is `Send`: tensor-plane membranes are plain buffers, so a
/// session's state can be handed between executor threads (unlike the
/// `Var` plane, whose `Rc`-based graph handles never leave their thread).
#[derive(Debug, Default)]
pub struct InferState {
    /// One entry per LIF layer, network order; `None` for layers that had
    /// not stepped yet when the snapshot was taken.
    membranes: Vec<Option<Tensor>>,
}

impl InferState {
    /// Wraps per-layer membranes taken in network order (model-internal;
    /// callers obtain snapshots via [`InferForward::take_infer_state`]).
    pub fn from_membranes(membranes: Vec<Option<Tensor>>) -> Self {
        Self { membranes }
    }

    /// Consumes the snapshot into its per-layer membranes, network order.
    pub fn into_membranes(self) -> Vec<Option<Tensor>> {
        self.membranes
    }

    /// Number of LIF layers the snapshot covers.
    pub fn layers(&self) -> usize {
        self.membranes.len()
    }

    /// Resident size of the snapshot's membrane buffers in bytes — what a
    /// serving session's pinned state costs, and the quantity the cluster's
    /// bounded-memory eviction accounts against.
    pub fn bytes(&self) -> usize {
        self.membranes.iter().flatten().map(|m| m.len() * std::mem::size_of::<f32>()).sum()
    }
}

/// The **inference plane**: timestep forward on plain [`Tensor`]s.
///
/// Implementations must allocate **zero autograd nodes** and route their
/// heavy kernels through `ttsnn_tensor::runtime` (arena-backed
/// intermediates). The semantics knob is [`InferStats`]: `Batch` is
/// bit-faithful to [`TrainForward`] on the same batch, `PerSample` is
/// batch-composition-invariant for serving.
pub trait InferForward: SpikingModel {
    /// Processes the input frame at timestep `t`, returning `(B, K)`
    /// logits, without building any autograd graph.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input does not match the architecture.
    fn forward_timestep_tensor(&mut self, x: &Tensor, t: usize) -> Result<Tensor, ShapeError>;

    /// Selects the inference-plane statistics/batching semantics. Takes
    /// effect immediately — switch only between sequences (i.e. around a
    /// [`SpikingModel::reset_state`]): changing it mid-unrolling would mix
    /// the two semantics within membrane state built under the other mode,
    /// voiding both determinism contracts for that sequence.
    fn set_infer_stats(&mut self, stats: InferStats);

    /// The currently selected inference-plane semantics.
    fn infer_stats(&self) -> InferStats;

    /// Moves the inference-plane membrane state out of every LIF layer
    /// (network order), leaving the model stateless on that plane — the
    /// training (`Var`) plane and the activity counters are untouched.
    /// Restoring the snapshot resumes the unrolling bit-identically.
    fn take_infer_state(&mut self) -> InferState;

    /// Installs a snapshot previously produced by
    /// [`InferForward::take_infer_state`] on **the same architecture**,
    /// replacing (and recycling) whatever membrane state the layers held.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the snapshot's layer count does not match
    /// this model (a snapshot from a different architecture); per-layer
    /// shape mismatches surface at the next timestep forward.
    fn restore_infer_state(&mut self, state: InferState) -> Result<(), ShapeError>;
}

/// A network usable on **both** execution planes — what the trainers
/// require, since they train on the `Var` plane and evaluate on the
/// tensor plane. Blanket-implemented; never implement it manually.
pub trait Model: TrainForward + InferForward {}

impl<T: TrainForward + InferForward> Model for T {}

/// Tensor-plane fully connected layer `y = x · wᵀ + b` with `x: (B, F)`,
/// `w: (O, F)`, `b: (O)` — the graph-free twin of `Var::linear`.
///
/// In [`InferStats::Batch`] mode the product runs as one batched GEMM
/// (bit-identical to the `Var` path); in [`InferStats::PerSample`] mode it
/// runs row by row, so each sample's logits are computed by the exact
/// kernel a batch-of-1 call would use, whatever the batch size.
#[cfg(test)]
pub(crate) fn linear_tensor(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    stats: InferStats,
) -> Result<Tensor, ShapeError> {
    linear_tensor_mode(x, w, b, stats, spike::sparse_mode())
}

/// [`linear_tensor`] under an explicit sparse-dispatch mode (the form
/// the models call, having resolved their override once per timestep).
///
/// Only the [`InferStats::PerSample`] arm ever routes to the event-driven
/// [`spike::sparse_linear`]: the sparse kernel replicates the per-row
/// (`m = 1`) GEMM summation order exactly, whereas the
/// [`InferStats::Batch`] arm's batched GEMM switches to a different
/// (blocked) order at ≥ 8 rows — so Batch mode stays dense to keep its
/// bit-identity with the training plane unconditional.
pub(crate) fn linear_tensor_mode(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    stats: InferStats,
    mode: SparseMode,
) -> Result<Tensor, ShapeError> {
    if x.ndim() != 2 || w.ndim() != 2 || b.ndim() != 1 {
        return Err(ShapeError::new(format!(
            "linear_tensor: expected x:(B,F) w:(O,F) b:(O), got {:?} {:?} {:?}",
            x.shape(),
            w.shape(),
            b.shape()
        )));
    }
    let (batch, feat) = (x.shape()[0], x.shape()[1]);
    let (out, feat2) = (w.shape()[0], w.shape()[1]);
    if feat != feat2 || b.shape()[0] != out {
        return Err(ShapeError::new(format!(
            "linear_tensor: inconsistent dims x:{:?} w:{:?} b:{:?}",
            x.shape(),
            w.shape(),
            b.shape()
        )));
    }
    let mut y = match stats {
        InferStats::Batch => x.matmul_a_bt(w)?,
        InferStats::PerSample => {
            let sparse =
                if mode == SparseMode::Off { None } else { spike::SpikeTensor::try_pack(x) };
            match sparse.filter(|sp| mode.routes_sparse(sp.density())) {
                Some(sp) => spike::sparse_linear(&sp, w)?,
                None => {
                    let mut y = Tensor::from_vec(runtime::take_buffer(batch * out), &[batch, out])?;
                    let rt = Runtime::global();
                    for s in 0..batch {
                        runtime::gemm_a_bt(
                            rt,
                            &x.data()[s * feat..(s + 1) * feat],
                            w.data(),
                            &mut y.data_mut()[s * out..(s + 1) * out],
                            1,
                            feat,
                            out,
                        );
                    }
                    y
                }
            }
        }
    };
    for i in 0..batch {
        for j in 0..out {
            y.data_mut()[i * out + j] += b.data()[j];
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttsnn_tensor::Rng;

    #[test]
    fn linear_tensor_matches_var_linear_in_batch_mode() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[9, 7], &mut rng); // 9 rows: batched-GEMM path
        let w = Tensor::randn(&[5, 7], &mut rng);
        let b = Tensor::randn(&[5], &mut rng);
        let via_var = Var::constant(x.clone())
            .linear(&Var::constant(w.clone()), &Var::constant(b.clone()))
            .unwrap()
            .to_tensor();
        let via_tensor = linear_tensor(&x, &w, &b, InferStats::Batch).unwrap();
        assert_eq!(via_var, via_tensor, "batch mode must be bit-identical to the Var plane");
    }

    #[test]
    fn linear_tensor_per_sample_is_batch_invariant() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[12, 6], &mut rng); // > 8 rows: the batched
        let w = Tensor::randn(&[4, 6], &mut rng); // GEMM would switch kernels
        let b = Tensor::randn(&[4], &mut rng);
        let batched = linear_tensor(&x, &w, &b, InferStats::PerSample).unwrap();
        for s in 0..12 {
            let row = Tensor::from_vec(x.data()[s * 6..(s + 1) * 6].to_vec(), &[1, 6]).unwrap();
            let solo = linear_tensor(&row, &w, &b, InferStats::PerSample).unwrap();
            assert_eq!(
                &batched.data()[s * 4..(s + 1) * 4],
                solo.data(),
                "row {s} must not depend on batch composition"
            );
        }
    }

    #[test]
    fn linear_tensor_rejects_bad_shapes() {
        let x = Tensor::zeros(&[2, 5]);
        let w = Tensor::zeros(&[3, 4]);
        let b = Tensor::zeros(&[3]);
        assert!(linear_tensor(&x, &w, &b, InferStats::Batch).is_err());
        assert!(linear_tensor(
            &x,
            &Tensor::zeros(&[3, 5]),
            &Tensor::zeros(&[2]),
            InferStats::Batch
        )
        .is_err());
    }
}
