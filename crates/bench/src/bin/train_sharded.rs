//! Data-parallel training throughput: sharded vs single-shard, plus the
//! persistent pool's region-dispatch cost vs the old scoped-spawn design.
//!
//! Criterion-free. Two experiments, both recorded into
//! `BENCH_train_sharded.json` in the working directory:
//!
//! 1. **`train_sharded`** — optimizer steps/second of a
//!    [`ShardedTrainer`] at 1 shard vs `TTSNN_NUM_SHARDS` (default 2)
//!    shards, identical micro-batch size (so the two runs produce
//!    bit-identical weights — only wall-clock differs).
//! 2. **`pool_dispatch`** — microseconds per two-thread parallel region
//!    for the persistent channel-fed pool against an inline
//!    scoped-spawn-per-region baseline (the PR 1 design), i.e. the
//!    spawn-amortization win for small regions.
//!
//! ```sh
//! TTSNN_NUM_SHARDS=4 cargo run -p ttsnn-bench --release --bin train_sharded
//! ```

use std::time::Instant;

use ttsnn_autograd::SgdConfig;
use ttsnn_bench::harness::micro::{write_json, BenchRecord};
use ttsnn_data::{Batch, StaticImages};
use ttsnn_snn::conv_unit::ConvPolicy;
use ttsnn_snn::{LossKind, ResNetConfig, ResNetSnn, ShardConfig, ShardedTrainer};
use ttsnn_tensor::runtime::Runtime;
use ttsnn_tensor::Rng;

const BATCH: usize = 16;
const MICRO: usize = 4;
const TIMESTEPS: usize = 2;
const STEPS: usize = 4;

fn factory() -> impl Fn() -> ResNetSnn + Send + Sync + Clone + 'static {
    || {
        let mut rng = Rng::seed_from(42);
        ResNetSnn::new(ResNetConfig::resnet18(4, (8, 8), 8), &ConvPolicy::Baseline, &mut rng)
    }
}

fn data() -> Vec<Batch> {
    let mut rng = Rng::seed_from(1);
    StaticImages::new(3, 8, 8, 4, 0.15, 9)
        .dataset(BATCH * 2, &mut rng)
        .batches(BATCH, TIMESTEPS, &mut rng)
        .expect("bench batches")
}

/// Optimizer steps per second at the given shard count.
fn steps_per_sec(shards: usize, batches: &[Batch]) -> f64 {
    let mut trainer = ShardedTrainer::new(ShardConfig::new(shards, MICRO), factory());
    let sgd = SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 };
    // Warmup (first step pays model/arena setup).
    trainer.step(&batches[0], LossKind::SumCe, sgd).expect("warmup step");
    let start = Instant::now();
    for s in 0..STEPS {
        trainer.step(&batches[s % batches.len()], LossKind::SumCe, sgd).expect("bench step");
    }
    STEPS as f64 / start.elapsed().as_secs_f64()
}

/// Scoped fork/join region over two ranges — the per-region thread-spawn
/// design this pool replaced, reproduced inline as the baseline.
fn scoped_region(n: usize, f: impl Fn(usize, usize) + Sync) {
    let mid = n / 2;
    std::thread::scope(|s| {
        let fref = &f;
        s.spawn(move || fref(mid, n));
        fref(0, mid);
    });
}

/// Microseconds per two-worker region, persistent pool vs scoped spawn,
/// on a deliberately tiny region (the dispatch overhead dominates).
fn dispatch_cost() -> (f64, f64) {
    let rt = Runtime::new(2);
    let sink = std::sync::atomic::AtomicUsize::new(0);
    let body = |start: usize, end: usize| {
        sink.fetch_add(end - start, std::sync::atomic::Ordering::Relaxed);
    };
    let iters = 2000u32;
    // Warmup spawns the pool workers.
    rt.parallel_for(2, 1, body);
    let t0 = Instant::now();
    for _ in 0..iters {
        rt.parallel_for(2, 1, body);
    }
    let pool_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    scoped_region(2, body);
    let t1 = Instant::now();
    for _ in 0..iters {
        scoped_region(2, body);
    }
    let scoped_us = t1.elapsed().as_secs_f64() * 1e6 / iters as f64;
    (pool_us, scoped_us)
}

fn main() {
    let threads = Runtime::global().threads();
    let shards = ShardConfig::from_env(MICRO).num_shards.max(2);
    println!(
        "train_sharded: {threads} kernel thread(s), comparing 1 vs {shards} shard(s) \
         (TTSNN_NUM_THREADS / TTSNN_NUM_SHARDS override)\n"
    );
    let batches = data();

    let single = steps_per_sec(1, &batches);
    let sharded = steps_per_sec(shards, &batches);
    println!("{:<24} {:>12.2} steps/s", "1 shard", single);
    println!("{:<24} {:>12.2} steps/s", format!("{shards} shards"), sharded);
    println!("{:<24} {:>12.2}x", "speedup", sharded / single);

    let (pool_us, scoped_us) = dispatch_cost();
    println!("\n{:<24} {:>12.2} us/region", "persistent pool", pool_us);
    println!("{:<24} {:>12.2} us/region", "scoped spawn (PR 1)", scoped_us);
    println!("{:<24} {:>12.2}x", "spawn amortization", scoped_us / pool_us);

    let records = vec![
        BenchRecord {
            name: "train_sharded".into(),
            metrics: vec![
                ("steps_per_sec_1_shard".into(), single),
                ("steps_per_sec_n_shards".into(), sharded),
                ("speedup".into(), sharded / single),
                ("shards".into(), shards as f64),
                ("micro_batch".into(), MICRO as f64),
                ("batch".into(), BATCH as f64),
                ("threads".into(), threads as f64),
            ],
        },
        BenchRecord {
            name: "pool_dispatch".into(),
            metrics: vec![
                ("pool_region_us".into(), pool_us),
                ("scoped_region_us".into(), scoped_us),
                ("amortization_x".into(), scoped_us / pool_us),
            ],
        },
    ];
    let path = "BENCH_train_sharded.json";
    write_json(path, &records).expect("write bench json");
    println!("\nwrote {path}");
}
