//! Determinism and compatibility tests for the data-parallel trainer.
//!
//! The headline property: with a fixed micro-batch size, training through
//! [`ShardedTrainer`] produces **bit-identical weights for every shard
//! count** (1–4 replicas here), because micro-batch gradients are reduced
//! in fixed global order regardless of which worker computed them. The
//! kernel runtime underneath is itself bit-identical across thread counts
//! (asserted in `crates/tensor/tests/runtime_kernels.rs`), so CI re-runs
//! this suite under `TTSNN_NUM_THREADS=2` to pin the full
//! shards × kernel-threads matrix.

use proptest::prelude::*;
use ttsnn_autograd::{Sgd, SgdConfig, Var};
use ttsnn_data::{Batch, StaticImages};
use ttsnn_snn::checkpoint;
use ttsnn_snn::conv_unit::ConvPolicy;
use ttsnn_snn::trainer::{evaluate, train_step, TrainConfig};
use ttsnn_snn::{LossKind, ResNetConfig, ResNetSnn, ShardConfig, ShardedTrainer, SpikingModel};
use ttsnn_tensor::{Rng, Tensor};

/// A deterministic tiny-model factory: same seed → bit-identical replicas.
fn factory(seed: u64) -> impl Fn() -> ResNetSnn + Send + Sync + Clone + 'static {
    move || {
        let mut rng = Rng::seed_from(seed);
        let cfg = ResNetConfig::resnet18(4, (8, 8), 16);
        ResNetSnn::new(cfg, &ConvPolicy::Baseline, &mut rng)
    }
}

/// Small synthetic batches: `n` batches of 12 samples, 2 timesteps.
fn batches(seed: u64, n: usize) -> Vec<Batch> {
    let mut rng = Rng::seed_from(seed.wrapping_add(1000));
    let gen = StaticImages::new(3, 8, 8, 4, 0.15, 99);
    let ds = gen.dataset(12 * n, &mut rng);
    ds.batches(12, 2, &mut rng).unwrap()
}

const SGD: SgdConfig = SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 };

/// Weights after `steps` sharded optimizer steps with the given replica
/// count (micro-batch fixed at 3 → 4 micro-batches per 12-sample batch).
fn weights_after(seed: u64, shards: usize, steps: usize) -> Vec<Tensor> {
    let data = batches(seed, 2);
    let mut trainer = ShardedTrainer::new(ShardConfig::new(shards, 3), factory(seed));
    for s in 0..steps {
        let (loss, _) = trainer.step(&data[s % data.len()], LossKind::SumCe, SGD).unwrap();
        assert!(loss.is_finite(), "seed {seed} shards {shards} step {s}: loss {loss}");
    }
    assert!(trainer.replicas_in_sync(), "seed {seed} shards {shards}: replicas diverged");
    trainer.params()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// ≥3 optimizer steps, 1–4 shards: identical bits, whatever the seed.
    #[test]
    fn sharded_training_is_bit_identical_across_shard_counts(seed in 0u64..100) {
        let reference = weights_after(seed, 1, 3);
        for shards in 2..=4usize {
            let got = weights_after(seed, shards, 3);
            prop_assert_eq!(reference.len(), got.len());
            for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                prop_assert!(
                    a == b,
                    "param {i} differs between 1 and {} shards (seed {})", shards, seed
                );
            }
        }
    }
}

/// One shard with `micro_batch == batch_size` is the classic trainer, bit
/// for bit: same forward, same backward, same SGD arithmetic.
#[test]
fn single_shard_full_micro_batch_matches_classic_train_step() {
    let seed = 7u64;
    let data = batches(seed, 2);

    // Classic: model + Sgd on this thread.
    let mut model = factory(seed)();
    let mut opt = Sgd::new(model.params(), SGD);
    for batch in data.iter().cycle().take(4) {
        train_step(&mut model, batch, &mut opt, LossKind::SumCe).unwrap();
    }

    // Sharded: one replica, micro-batch = full batch.
    let mut trainer = ShardedTrainer::new(ShardConfig::new(1, 12), factory(seed));
    for batch in data.iter().cycle().take(4) {
        trainer.step(batch, LossKind::SumCe, SGD).unwrap();
    }

    let classic: Vec<Tensor> = model.params().iter().map(Var::to_tensor).collect();
    let sharded = trainer.params();
    assert_eq!(classic.len(), sharded.len());
    for (i, (a, b)) in classic.iter().zip(&sharded).enumerate() {
        assert!(a == b, "param {i}: sharded(1, micro=B) must equal classic training bitwise");
    }

    // Evaluation agrees too (integer-count reduction, order-free).
    let expected = evaluate(&mut model, &data).unwrap();
    assert_eq!(trainer.evaluate(&data).unwrap(), expected);
}

/// The epoch-level driver mirrors `trainer::train` semantics and reports
/// the shard count; losses stay finite and the run completes.
#[test]
fn sharded_train_runs_epochs_and_reports() {
    let seed = 11u64;
    let data = batches(seed, 3);
    let (train_b, test_b) = data.split_at(2);
    let mut trainer = ShardedTrainer::new(ShardConfig::new(2, 4), factory(seed));
    let cfg = TrainConfig { epochs: 2, lr: 0.05, ..TrainConfig::default() };
    let report = trainer.train(train_b, test_b, &cfg).unwrap();
    assert_eq!(report.epochs.len(), 2);
    assert_eq!(report.shards, 2);
    assert!(report.final_loss().is_finite());
    assert!(report.mean_step_seconds > 0.0);
    assert!(trainer.replicas_in_sync());
}

/// Checkpoints written by the sharded trainer load into a classic model
/// (and vice versa), and a checkpoint broadcast resynchronizes every
/// replica of another trainer with a different shard count.
#[test]
fn sharded_checkpoints_interop_with_classic_models() {
    let seed = 3u64;
    let data = batches(seed, 1);
    let mut trainer = ShardedTrainer::new(ShardConfig::new(2, 6), factory(seed));
    trainer.step(&data[0], LossKind::SumCe, SGD).unwrap();

    // Sharded → classic.
    let mut buf = Vec::new();
    trainer.save_checkpoint(&mut buf).unwrap();
    let classic = factory(seed)();
    checkpoint::load_params(&classic.params(), buf.as_slice()).unwrap();
    let classic_params: Vec<Tensor> = classic.params().iter().map(Var::to_tensor).collect();
    assert_eq!(classic_params, trainer.params());

    // Sharded → sharded with a different shard count: all replicas match.
    let mut other = ShardedTrainer::new(ShardConfig::new(3, 6), factory(seed + 1));
    other.load_checkpoint(buf.as_slice()).unwrap();
    assert_eq!(other.params(), trainer.params());
    assert!(other.replicas_in_sync());

    // Classic → sharded.
    let mut buf2 = Vec::new();
    checkpoint::save_params(&classic.params(), &mut buf2).unwrap();
    let mut third = ShardedTrainer::new(ShardConfig::new(2, 6), factory(seed + 2));
    third.load_checkpoint(buf2.as_slice()).unwrap();
    assert_eq!(third.params(), trainer.params());
}

/// Misconfigured batches are rejected without touching replica state.
#[test]
fn sharded_step_rejects_indivisible_batches() {
    let seed = 5u64;
    let data = batches(seed, 1);
    let mut trainer = ShardedTrainer::new(ShardConfig::new(2, 5), factory(seed));
    let before = trainer.params();
    assert!(trainer.step(&data[0], LossKind::SumCe, SGD).is_err(), "12 % 5 != 0 must fail");
    assert_eq!(trainer.params(), before, "failed step must not move weights");
    assert!(trainer.replicas_in_sync());
}
