//! # tt-snn
//!
//! A from-scratch Rust reproduction of **TT-SNN: Tensor Train Decomposition
//! for Efficient Spiking Neural Network Training** (DATE 2024).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`tensor`] — dense f32 tensor kernels (conv2d, matmul, SVD, pooling).
//! * [`autograd`] — tape-based reverse-mode autodiff and optimizers (BPTT).
//! * [`core`] — the paper's contribution: TT-SVD of convolution weights,
//!   VBMF rank selection, the STT/PTT/HTT spiking-conv modules, merge-back,
//!   and analytic params/FLOPs accounting.
//! * [`snn`] — the SNN training substrate: LIF neurons, surrogate gradients,
//!   direct coding, tdBN/TEBN, MS-ResNet/VGG architectures, TET loss, NDA
//!   augmentation, and the BPTT trainer — with the model API split into a
//!   training plane (`TrainForward`, autograd) and an inference plane
//!   (`InferForward`, graph-free tensors).
//! * [`infer`] — the batched serving engine: frozen plans from
//!   architecture config + checkpoint (optionally merged into dense
//!   kernels), dynamic request micro-batching, per-sample determinism.
//! * [`serve`] — the network serving plane: TCP ingress over a
//!   length-prefixed binary protocol, multi-plan routing, per-tenant fair
//!   queueing and rate limits (overload control), and a Prometheus
//!   `/metrics` endpoint.
//! * [`data`] — synthetic static (CIFAR-like) and dynamic (N-Caltech101-like,
//!   DVS-Gesture-like) dataset generators.
//! * [`accel`] — the multi-cluster systolic-array training-accelerator energy
//!   model (Table I, Fig. 3/4 of the paper).
//!
//! ## Quickstart
//!
//! ```
//! use tt_snn::core::{TtConv, TtMode};
//! use tt_snn::tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Decompose a 3x3 convolution (16 -> 32 channels) at TT-rank 8 and run it
//! // in the Parallel-TT (PTT) configuration from the paper.
//! let mut rng = tt_snn::tensor::Rng::seed_from(42);
//! let layer = TtConv::randn(16, 32, 8, TtMode::Ptt, &mut rng);
//! let x = Tensor::randn(&[2, 16, 8, 8], &mut rng);
//! let y = layer.forward_tensor(&x, 0)?;
//! assert_eq!(y.shape(), &[2, 32, 8, 8]);
//! # Ok(())
//! # }
//! ```

pub use ttsnn_accel as accel;
pub use ttsnn_autograd as autograd;
pub use ttsnn_core as core;
pub use ttsnn_data as data;
pub use ttsnn_infer as infer;
pub use ttsnn_obs as obs;
pub use ttsnn_serve as serve;
pub use ttsnn_snn as snn;
pub use ttsnn_tensor as tensor;
