//! CIFAR-like synthetic static image generator.
//!
//! Each class is defined by a smooth random spatial prototype (a mixture of
//! oriented Gaussian bumps per channel); samples are the prototype plus
//! pixel noise and a random global brightness jitter, clamped to `[0, 1]`
//! like normalized image data. The task is linearly non-trivial but
//! learnable by a small convnet in a few epochs — enough to compare
//! baseline vs STT/PTT/HTT training dynamics as in Table II.

use ttsnn_tensor::{Rng, Tensor};

use crate::batch::{Dataset, Sample};

/// Generator for class-conditional static images.
#[derive(Debug, Clone)]
pub struct StaticImages {
    channels: usize,
    height: usize,
    width: usize,
    num_classes: usize,
    noise: f32,
    prototype_seed: u64,
    spike_density: Option<f32>,
}

impl StaticImages {
    /// A CIFAR10-like generator: 10 RGB classes at `h × w`.
    pub fn cifar10_like(h: usize, w: usize) -> Self {
        Self::new(3, h, w, 10, 0.25, PROTOTYPE_SEED)
    }

    /// A CIFAR100-like generator (more classes, same geometry).
    pub fn cifar100_like(h: usize, w: usize) -> Self {
        // More classes at the same resolution: intrinsically harder, like
        // CIFAR100 vs CIFAR10.
        Self::new(3, h, w, 100, 0.25, PROTOTYPE_SEED ^ 0x100)
    }

    /// Fully custom generator.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the class count is zero.
    pub fn new(
        channels: usize,
        height: usize,
        width: usize,
        num_classes: usize,
        noise: f32,
        prototype_seed: u64,
    ) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0 && num_classes > 0,
            "StaticImages: dimensions and class count must be positive"
        );
        Self { channels, height, width, num_classes, noise, prototype_seed, spike_density: None }
    }

    /// Switches the generator to **binary spike frames** at an exact,
    /// controllable density: each sample keeps its analog class signal
    /// only as a ranking — the `round(density · C·H·W)` brightest pixels
    /// fire (`1.0`), every other pixel is `0.0` (ties broken by pixel
    /// index, so the output is fully deterministic given the RNG stream).
    /// This is the sparsity knob the spike-sparsity benches and tests
    /// sweep: unlike thresholding, rank selection hits the requested
    /// density exactly, sample after sample.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= density <= 1.0`.
    pub fn with_spike_density(mut self, density: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&density),
            "StaticImages: spike density {density} not in [0, 1]"
        );
        self.spike_density = Some(density);
        self
    }

    /// The configured binary spike density, or `None` when the generator
    /// emits analog frames (the default).
    pub fn spike_density(&self) -> Option<f32> {
        self.spike_density
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Frame shape `(C, H, W)`.
    pub fn frame_shape(&self) -> [usize; 3] {
        [self.channels, self.height, self.width]
    }

    /// The deterministic prototype image for a class.
    pub fn prototype(&self, class: usize) -> Tensor {
        let mut rng = Rng::seed_from(
            self.prototype_seed ^ (class as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut img = Tensor::zeros(&[self.channels, self.height, self.width]);
        for c in 0..self.channels {
            // 2 Gaussian bumps per channel...
            for _ in 0..2 {
                let cy = rng.uniform_in(0.15, 0.85) * self.height as f32;
                let cx = rng.uniform_in(0.15, 0.85) * self.width as f32;
                let sy = rng.uniform_in(0.08, 0.3) * self.height as f32;
                let sx = rng.uniform_in(0.08, 0.3) * self.width as f32;
                let amp = rng.uniform_in(0.4, 1.0);
                for y in 0..self.height {
                    for x in 0..self.width {
                        let dy = (y as f32 - cy) / sy;
                        let dx = (x as f32 - cx) / sx;
                        *img.at_mut(&[c, y, x]) += amp * (-(dy * dy + dx * dx) / 2.0).exp();
                    }
                }
            }
            // ...plus 2 oriented ridges. Gaussians are spatially separable
            // (a regime that flatters separable kernel factorizations);
            // natural images are not, so the class signal also includes
            // non-axis-aligned structure.
            for _ in 0..2 {
                let theta = rng.uniform_in(0.0, std::f32::consts::PI);
                let (ct, st) = (theta.cos(), theta.sin());
                let offset = rng.uniform_in(0.2, 0.8)
                    * (ct.abs() * self.width as f32 + st.abs() * self.height as f32);
                let sigma = rng.uniform_in(0.05, 0.12) * self.width.max(self.height) as f32;
                let amp = rng.uniform_in(0.3, 0.7);
                for y in 0..self.height {
                    for x in 0..self.width {
                        let d = (x as f32 * ct + y as f32 * st - offset) / sigma;
                        *img.at_mut(&[c, y, x]) += amp * (-(d * d) / 2.0).exp();
                    }
                }
            }
        }
        img.map(|v| v.clamp(0.0, 1.0))
    }

    /// Draws one noisy sample of the given class.
    pub fn sample(&self, class: usize, rng: &mut Rng) -> Sample {
        let proto = self.prototype(class);
        let brightness = rng.uniform_in(0.85, 1.15);
        let frame = proto
            .map(|v| v * brightness)
            .add(&Tensor::randn(&[self.channels, self.height, self.width], rng).scale(self.noise))
            .expect("shapes match")
            .map(|v| v.clamp(0.0, 1.0));
        let frame = match self.spike_density {
            Some(d) => binarize_at_density(&frame, d),
            None => frame,
        };
        Sample { frames: vec![frame], label: class }
    }

    /// Generates a balanced dataset of `n` samples.
    pub fn dataset(&self, n: usize, rng: &mut Rng) -> Dataset {
        let samples = (0..n).map(|i| self.sample(i % self.num_classes, rng)).collect();
        Dataset::new(samples, self.num_classes)
    }
}

/// Base seed for class prototypes (shared by the CIFAR-like presets).
const PROTOTYPE_SEED: u64 = 0xC1FA_05EE;

/// Binarizes a frame to exactly `round(density · len)` ones by rank:
/// the brightest pixels fire, ties broken by ascending pixel index.
fn binarize_at_density(frame: &Tensor, density: f32) -> Tensor {
    let len = frame.len();
    let fire = ((f64::from(density) * len as f64).round() as usize).min(len);
    let mut order: Vec<usize> = (0..len).collect();
    order.sort_by(|&a, &b| {
        frame.data()[b].partial_cmp(&frame.data()[a]).expect("clamped values").then(a.cmp(&b))
    });
    let mut out = vec![0.0f32; len];
    for &i in &order[..fire] {
        out[i] = 1.0;
    }
    Tensor::from_vec(out, frame.shape()).expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototypes_are_deterministic_and_distinct() {
        let gen = StaticImages::cifar10_like(16, 16);
        let a1 = gen.prototype(0);
        let a2 = gen.prototype(0);
        assert_eq!(a1, a2);
        let b = gen.prototype(1);
        assert!(a1.max_abs_diff(&b).unwrap() > 0.05, "class prototypes too similar");
    }

    #[test]
    fn samples_are_in_unit_range() {
        let gen = StaticImages::cifar10_like(8, 8);
        let mut rng = Rng::seed_from(1);
        for class in 0..10 {
            let s = gen.sample(class, &mut rng);
            assert_eq!(s.label, class);
            assert_eq!(s.frames.len(), 1);
            assert!(s.frames[0].min() >= 0.0);
            assert!(s.frames[0].max() <= 1.0);
        }
    }

    #[test]
    fn samples_of_same_class_differ_by_noise() {
        let gen = StaticImages::cifar10_like(8, 8);
        let mut rng = Rng::seed_from(2);
        let a = gen.sample(3, &mut rng);
        let b = gen.sample(3, &mut rng);
        let d = a.frames[0].max_abs_diff(&b.frames[0]).unwrap();
        assert!(d > 0.01, "noise should differentiate samples, diff {d}");
    }

    #[test]
    fn dataset_is_balanced() {
        let gen = StaticImages::cifar10_like(8, 8);
        let mut rng = Rng::seed_from(3);
        let ds = gen.dataset(50, &mut rng);
        assert_eq!(ds.len(), 50);
        let mut counts = [0usize; 10];
        for s in ds.samples() {
            counts[s.label] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn cifar100_like_has_100_classes() {
        let gen = StaticImages::cifar100_like(8, 8);
        assert_eq!(gen.num_classes(), 100);
        assert_eq!(gen.frame_shape(), [3, 8, 8]);
    }

    #[test]
    fn spike_density_knob_is_exact_and_binary() {
        for density in [0.0, 0.1, 0.25, 0.5, 0.99, 1.0] {
            let gen = StaticImages::cifar10_like(8, 8).with_spike_density(density);
            assert_eq!(gen.spike_density(), Some(density));
            let mut rng = Rng::seed_from(5);
            let s = gen.sample(2, &mut rng);
            let frame = &s.frames[0];
            assert!(frame.data().iter().all(|&v| v == 0.0 || v == 1.0), "frame must be binary");
            let ones = frame.data().iter().filter(|&&v| v == 1.0).count();
            let want = (f64::from(density) * frame.len() as f64).round() as usize;
            assert_eq!(ones, want, "density {density}: got {ones} spikes, want {want}");
        }
    }

    #[test]
    fn spike_frames_are_deterministic_and_keep_class_signal() {
        let gen = StaticImages::cifar10_like(12, 12).with_spike_density(0.2);
        let a = gen.sample(4, &mut Rng::seed_from(6));
        let b = gen.sample(4, &mut Rng::seed_from(6));
        assert_eq!(a.frames[0], b.frames[0], "same RNG stream must reproduce the frame");
        // The firing set must still follow the class prototype: spikes land
        // disproportionately on bright prototype pixels.
        let proto = gen.prototype(4);
        let spikes = &a.frames[0];
        let fired: f32 = (0..spikes.len())
            .filter(|&i| spikes.data()[i] == 1.0)
            .map(|i| proto.data()[i])
            .sum::<f32>()
            / spikes.data().iter().filter(|&&v| v == 1.0).count() as f32;
        let overall: f32 = proto.data().iter().sum::<f32>() / proto.len() as f32;
        assert!(fired > overall, "spikes should prefer bright prototype pixels");
    }

    #[test]
    fn class_signal_exceeds_noise() {
        // Nearest-prototype classification on clean prototypes should be
        // far better than chance — the dataset is learnable.
        let gen = StaticImages::cifar10_like(12, 12);
        let mut rng = Rng::seed_from(4);
        let protos: Vec<Tensor> = (0..10).map(|c| gen.prototype(c)).collect();
        let mut correct = 0;
        let trials = 100;
        for i in 0..trials {
            let class = i % 10;
            let s = gen.sample(class, &mut rng);
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da = s.frames[0].sub(&protos[a]).unwrap().norm();
                    let db = s.frames[0].sub(&protos[b]).unwrap().norm();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == class {
                correct += 1;
            }
        }
        assert!(correct > 60, "nearest-prototype accuracy {correct}/{trials}");
    }
}
