//! Spike-sparsity execution: event-driven kernels vs dense, and the
//! density-adaptive dispatcher's overhead.
//!
//! Criterion-free. Recorded into `BENCH_spike_sparsity.json` in the
//! working directory:
//!
//! 1. **`kernel_zeros_*`** — samples/second of [`spike::sparse_conv2d`]
//!    vs the dense [`conv::conv2d`] it bit-matches, on a representative
//!    VGG-interior geometry at ~50/75/90/99 % zeros (the acceptance band:
//!    ≥ 2× at ≥ 90 % zeros).
//! 2. **`sparse_linear_zeros_90`** — the same comparison for the
//!    classifier-shaped [`spike::sparse_linear`].
//! 3. **`crossover`** — the measured density at which sparse and dense
//!    conv throughput cross, next to the static
//!    [`spike::SPARSE_DENSITY_THRESHOLD`] the Auto dispatcher uses.
//! 4. **`dispatcher_low_sparsity` / `dispatcher_high_sparsity`** — whole
//!    VGG9 inference-plane throughput with the dispatcher in `Auto` vs
//!    pinned `Off`, on dense-ish (60 % ones) and sparse (5 % ones) spike
//!    frames from `StaticImages::with_spike_density`. Auto must lose
//!    ≤ ~5 % when traffic is dense (its packing probe is the only cost)
//!    and win when traffic is sparse.
//!
//! ```sh
//! cargo run -p ttsnn-bench --release --bin spike_sparsity
//! ```

use std::time::Instant;

use ttsnn_bench::harness::micro::{write_json, BenchRecord};
use ttsnn_data::StaticImages;
use ttsnn_snn::{ConvPolicy, InferForward, InferStats, SpikingModel, VggConfig, VggSnn};
use ttsnn_tensor::runtime::Runtime;
use ttsnn_tensor::spike::{self, SparseMode, SpikeTensor};
use ttsnn_tensor::{conv, Conv2dGeometry, Rng, Tensor};

const BATCH: usize = 8;
const KERNEL_ITERS: usize = 20;
const MODEL_ITERS: usize = 4;
const TIMESTEPS: usize = 4;

/// A VGG-interior conv: 32→32 channels at 16×16, 3×3, pad 1.
fn geometry() -> Conv2dGeometry {
    Conv2dGeometry::new(32, 32, (16, 16), (3, 3), (1, 1), (1, 1))
}

/// Random exactly-0.0/1.0 tensor with roughly `density` ones.
fn random_spikes(shape: &[usize], density: f64, rng: &mut Rng) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| if (rng.uniform() as f64) < density { 1.0 } else { 0.0 }).collect();
    Tensor::from_vec(data, shape).unwrap()
}

/// Samples/second of `f`, where one call processes `BATCH` samples.
fn samples_per_sec(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (iters * BATCH) as f64 / start.elapsed().as_secs_f64()
}

/// Best-of-3 samples/second of two alternating measurements — the
/// interleaving equalizes CPU frequency/warmup drift between them.
fn interleaved(iters: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        best_a = best_a.max(samples_per_sec(iters, &mut a));
        best_b = best_b.max(samples_per_sec(iters, &mut b));
    }
    (best_a, best_b)
}

/// (dense, sparse) conv samples/second at the given spike density.
fn conv_pair(density: f64, w: &Tensor, rng: &mut Rng) -> (f64, f64) {
    let g = geometry();
    let x = random_spikes(&[BATCH, g.in_channels, g.in_hw.0, g.in_hw.1], density, rng);
    let sp = SpikeTensor::try_pack(&x).expect("binary input");
    interleaved(
        KERNEL_ITERS,
        || {
            conv::conv2d(&x, w, &g).expect("dense conv");
        },
        || {
            spike::sparse_conv2d(&sp, w, &g).expect("sparse conv");
        },
    )
}

/// Whole-model samples/second of a VGG9 inference plane over spike
/// frames at the given density, under the given dispatch mode.
fn model_sps(net: &mut VggSnn, mode: SparseMode, density: f32, seed: u64) -> f64 {
    let gen = StaticImages::cifar10_like(16, 16).with_spike_density(density);
    let mut rng = Rng::seed_from(seed);
    let mut data = Vec::new();
    for i in 0..BATCH {
        data.extend_from_slice(gen.sample(i % gen.num_classes(), &mut rng).frames[0].data());
    }
    let input = Tensor::from_vec(data, &[BATCH, 3, 16, 16]).unwrap();
    net.set_sparse_mode(Some(mode));
    samples_per_sec(MODEL_ITERS, || {
        net.reset_state();
        for t in 0..TIMESTEPS {
            net.forward_timestep_tensor(&input, t).expect("forward");
        }
    })
}

fn main() {
    let threads = Runtime::global().threads();
    let g = geometry();
    println!(
        "spike_sparsity: {threads} kernel thread(s), conv {}ch {}x{} k{}x{}, batch {BATCH}\n",
        g.in_channels, g.in_hw.0, g.in_hw.1, g.kernel.0, g.kernel.1
    );

    let mut rng = Rng::seed_from(42);
    let w = Tensor::randn(&[g.out_channels, g.in_channels, g.kernel.0, g.kernel.1], &mut rng);
    let mut records = Vec::new();

    // 1. Kernel sweep across the acceptance densities.
    for zeros in [0.50f64, 0.75, 0.90, 0.99] {
        let (dense, sparse) = conv_pair(1.0 - zeros, &w, &mut rng);
        println!(
            "conv {:>2.0}% zeros: {:>10.1} dense vs {:>10.1} sparse samples/s ({:.2}x)",
            zeros * 100.0,
            dense,
            sparse,
            sparse / dense
        );
        records.push(BenchRecord {
            name: format!("kernel_zeros_{:.0}", zeros * 100.0),
            metrics: vec![
                ("zeros_fraction".into(), zeros),
                ("dense_samples_per_sec".into(), dense),
                ("sparse_samples_per_sec".into(), sparse),
                ("sparse_speedup".into(), sparse / dense),
                ("threads".into(), threads as f64),
            ],
        });
    }

    // 2. The classifier-shaped linear at 90% zeros.
    let (feat, out) = (512usize, 10usize);
    let x = random_spikes(&[BATCH, feat], 0.10, &mut rng);
    let sp = SpikeTensor::try_pack(&x).expect("binary input");
    let lw = Tensor::randn(&[out, feat], &mut rng);
    let (dense_lin, sparse_lin) = interleaved(
        KERNEL_ITERS * 10,
        || {
            let mut y = Tensor::zeros(&[BATCH, out]);
            for s in 0..BATCH {
                ttsnn_tensor::runtime::gemm_a_bt(
                    Runtime::global(),
                    &x.data()[s * feat..(s + 1) * feat],
                    lw.data(),
                    &mut y.data_mut()[s * out..(s + 1) * out],
                    1,
                    feat,
                    out,
                );
            }
        },
        || {
            spike::sparse_linear(&sp, &lw).expect("sparse linear");
        },
    );
    println!(
        "linear 90% zeros: {:>10.1} dense vs {:>10.1} sparse samples/s ({:.2}x)",
        dense_lin,
        sparse_lin,
        sparse_lin / dense_lin
    );
    records.push(BenchRecord {
        name: "sparse_linear_zeros_90".into(),
        metrics: vec![
            ("dense_samples_per_sec".into(), dense_lin),
            ("sparse_samples_per_sec".into(), sparse_lin),
            ("sparse_speedup".into(), sparse_lin / dense_lin),
        ],
    });

    // 3. Measured crossover: scan density upward until dense wins.
    let mut crossover = 1.0f64;
    let mut prev = 0.05f64;
    for step in 1..=14 {
        let density = step as f64 * 0.05;
        let (dense, sparse) = conv_pair(density, &w, &mut rng);
        if sparse < dense {
            crossover = (prev + density) / 2.0;
            break;
        }
        prev = density;
    }
    println!(
        "\nmeasured conv crossover density ~{crossover:.3} (dispatch threshold {})",
        spike::SPARSE_DENSITY_THRESHOLD
    );
    records.push(BenchRecord {
        name: "crossover".into(),
        metrics: vec![
            ("measured_crossover_density".into(), crossover),
            ("dispatch_threshold".into(), spike::SPARSE_DENSITY_THRESHOLD),
        ],
    });

    // 4. Dispatcher overhead/gain on a whole VGG9 inference plane.
    let mut net = VggSnn::new(VggConfig::vgg9(3, 10, (16, 16), 8), &ConvPolicy::Baseline, &mut rng);
    net.set_infer_stats(InferStats::PerSample);
    for (label, density, seed) in
        [("dispatcher_low_sparsity", 0.60f32, 7u64), ("dispatcher_high_sparsity", 0.05, 8)]
    {
        let (mut off, mut auto) = (0.0f64, 0.0f64);
        for _ in 0..3 {
            off = off.max(model_sps(&mut net, SparseMode::Off, density, seed));
            auto = auto.max(model_sps(&mut net, SparseMode::Auto, density, seed));
        }
        println!(
            "{label} ({:.0}% ones): {off:>8.1} off vs {auto:>8.1} auto samples/s ({:+.1}%)",
            density * 100.0,
            (auto / off - 1.0) * 100.0
        );
        records.push(BenchRecord {
            name: label.into(),
            metrics: vec![
                ("input_density".into(), f64::from(density)),
                ("off_samples_per_sec".into(), off),
                ("auto_samples_per_sec".into(), auto),
                ("auto_over_off".into(), auto / off),
            ],
        });
    }

    let path = "BENCH_spike_sparsity.json";
    write_json(path, &records).expect("write bench json");
    println!("\nwrote {path}");
}
