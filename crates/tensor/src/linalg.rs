//! Dense linear algebra needed by TT-SVD and VBMF: a one-sided Jacobi
//! singular value decomposition.
//!
//! Jacobi SVD is slower than bidiagonalization-based methods but is simple,
//! numerically robust and plenty fast for the matrices TT-SVD produces
//! (unfoldings of convolution kernels, at most a few thousand rows/columns).

use crate::error::ShapeError;
use crate::tensor::Tensor;

/// Thin singular value decomposition `A = U · diag(S) · Vt`.
///
/// For an `m×n` input, `u` is `m×k`, `s` has length `k`, and `vt` is `k×n`
/// with `k = min(m, n)`. Singular values are returned in non-increasing
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors, `m×k`.
    pub u: Tensor,
    /// Singular values, non-increasing, length `k`.
    pub s: Vec<f32>,
    /// Right singular vectors (transposed), `k×n`.
    pub vt: Tensor,
}

impl Svd {
    /// Reconstructs `U · diag(S) · Vt`.
    ///
    /// # Errors
    ///
    /// Propagates [`ShapeError`] from the underlying matrix products (cannot
    /// happen for a value produced by [`svd`]).
    pub fn reconstruct(&self) -> Result<Tensor, ShapeError> {
        let k = self.s.len();
        let mut us = self.u.clone();
        let m = us.shape()[0];
        for i in 0..m {
            for j in 0..k {
                us.data_mut()[i * k + j] *= self.s[j];
            }
        }
        us.matmul(&self.vt)
    }

    /// Truncates the decomposition to the leading `rank` components.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` or `rank > self.s.len()`.
    pub fn truncate(&self, rank: usize) -> Svd {
        assert!(rank >= 1 && rank <= self.s.len(), "rank {rank} out of range");
        let m = self.u.shape()[0];
        let n = self.vt.shape()[1];
        let k = self.s.len();
        let mut u = Tensor::zeros(&[m, rank]);
        for i in 0..m {
            for j in 0..rank {
                u.data_mut()[i * rank + j] = self.u.data()[i * k + j];
            }
        }
        let mut vt = Tensor::zeros(&[rank, n]);
        vt.data_mut().copy_from_slice(&self.vt.data()[..rank * n]);
        Svd { u, s: self.s[..rank].to_vec(), vt }
    }
}

/// Computes the thin SVD of a 2-D tensor by one-sided Jacobi rotation.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a` is not 2-D or has a zero dimension.
///
/// ```
/// use ttsnn_tensor::{linalg::svd, Tensor, Rng};
///
/// # fn main() -> Result<(), ttsnn_tensor::ShapeError> {
/// let mut rng = Rng::seed_from(1);
/// let a = Tensor::randn(&[6, 4], &mut rng);
/// let dec = svd(&a)?;
/// assert!(dec.reconstruct()?.max_abs_diff(&a)? < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn svd(a: &Tensor) -> Result<Svd, ShapeError> {
    if a.ndim() != 2 {
        return Err(ShapeError::new(format!("svd: expected 2-D tensor, got {:?}", a.shape())));
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    if m == 0 || n == 0 {
        return Err(ShapeError::new("svd: zero-sized matrix"));
    }
    // One-sided Jacobi wants tall matrices; transpose wide inputs and swap
    // U <-> V at the end.
    if m < n {
        let t = a.transpose().expect("2-D transpose cannot fail");
        let Svd { u, s, vt } = jacobi_tall(&t);
        let new_u = vt.transpose().expect("2-D transpose cannot fail");
        let new_vt = u.transpose().expect("2-D transpose cannot fail");
        return Ok(Svd { u: new_u, s, vt: new_vt });
    }
    Ok(jacobi_tall(a))
}

/// One-sided Jacobi SVD of a tall (`m >= n`) matrix.
fn jacobi_tall(a: &Tensor) -> Svd {
    let (m, n) = (a.shape()[0], a.shape()[1]);
    // Work on columns: store A column-major for cache-friendly rotations.
    let mut cols = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            cols[j * m + i] = a.data()[i * n + j];
        }
    }
    // V accumulates the right rotations, also column-major.
    let mut v = vec![0.0f32; n * n];
    for j in 0..n {
        v[j * n + j] = 1.0;
    }
    let eps = 1e-9f64;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    let x = cols[p * m + i] as f64;
                    let y = cols[q * m + i] as f64;
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                off += apq.abs();
                if apq.abs() <= eps * (app * aqq).sqrt().max(1e-30) {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) entry of A^T A.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let x = cols[p * m + i];
                    let y = cols[q * m + i];
                    cols[p * m + i] = (c * x as f64 - s * y as f64) as f32;
                    cols[q * m + i] = (s * x as f64 + c * y as f64) as f32;
                }
                for i in 0..n {
                    let x = v[p * n + i];
                    let y = v[q * n + i];
                    v[p * n + i] = (c * x as f64 - s * y as f64) as f32;
                    v[q * n + i] = (s * x as f64 + c * y as f64) as f32;
                }
            }
        }
        if off < 1e-10 {
            break;
        }
    }
    // Singular values = column norms; U = normalized columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f32> = (0..n)
        .map(|j| (0..m).map(|i| cols[j * m + i] * cols[j * m + i]).sum::<f32>().sqrt())
        .collect();
    order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut u = Tensor::zeros(&[m, n]);
    let mut vt = Tensor::zeros(&[n, n]);
    let mut s = Vec::with_capacity(n);
    for (rank, &j) in order.iter().enumerate() {
        let norm = norms[j];
        s.push(norm);
        let inv = if norm > 1e-20 { 1.0 / norm } else { 0.0 };
        for i in 0..m {
            u.data_mut()[i * n + rank] = cols[j * m + i] * inv;
        }
        for i in 0..n {
            vt.data_mut()[rank * n + i] = v[j * n + i];
        }
    }
    Svd { u, s, vt }
}

/// Squared Frobenius norm of a 2-D tensor.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a` is not 2-D.
pub fn frobenius_sq(a: &Tensor) -> Result<f32, ShapeError> {
    if a.ndim() != 2 {
        return Err(ShapeError::new(format!(
            "frobenius_sq: expected 2-D tensor, got {:?}",
            a.shape()
        )));
    }
    Ok(a.data().iter().map(|v| v * v).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn assert_orthonormal_cols(u: &Tensor, tol: f32) {
        let (m, k) = (u.shape()[0], u.shape()[1]);
        for a in 0..k {
            for b in 0..k {
                let dot: f32 = (0..m).map(|i| u.data()[i * k + a] * u.data()[i * k + b]).sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < tol, "col {a}·{b} = {dot}");
            }
        }
    }

    #[test]
    fn svd_reconstructs_tall() {
        let mut rng = Rng::seed_from(30);
        let a = Tensor::randn(&[12, 5], &mut rng);
        let dec = svd(&a).unwrap();
        assert_eq!(dec.u.shape(), &[12, 5]);
        assert_eq!(dec.vt.shape(), &[5, 5]);
        assert!(dec.reconstruct().unwrap().max_abs_diff(&a).unwrap() < 1e-3);
    }

    #[test]
    fn svd_reconstructs_wide() {
        let mut rng = Rng::seed_from(31);
        let a = Tensor::randn(&[4, 9], &mut rng);
        let dec = svd(&a).unwrap();
        assert_eq!(dec.u.shape(), &[4, 4]);
        assert_eq!(dec.vt.shape(), &[4, 9]);
        assert!(dec.reconstruct().unwrap().max_abs_diff(&a).unwrap() < 1e-3);
    }

    #[test]
    fn svd_square_orthonormal() {
        let mut rng = Rng::seed_from(32);
        let a = Tensor::randn(&[8, 8], &mut rng);
        let dec = svd(&a).unwrap();
        assert_orthonormal_cols(&dec.u, 1e-3);
        let v = dec.vt.transpose().unwrap();
        assert_orthonormal_cols(&v, 1e-3);
    }

    #[test]
    fn singular_values_sorted_nonnegative() {
        let mut rng = Rng::seed_from(33);
        let a = Tensor::randn(&[10, 6], &mut rng);
        let dec = svd(&a).unwrap();
        for w in dec.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        for &s in &dec.s {
            assert!(s >= 0.0);
        }
    }

    #[test]
    fn svd_of_known_rank_matrix() {
        // rank-2 matrix: outer product sum
        let mut rng = Rng::seed_from(34);
        let u1 = Tensor::randn(&[7, 1], &mut rng);
        let v1 = Tensor::randn(&[1, 5], &mut rng);
        let u2 = Tensor::randn(&[7, 1], &mut rng);
        let v2 = Tensor::randn(&[1, 5], &mut rng);
        let a = u1.matmul(&v1).unwrap().add(&u2.matmul(&v2).unwrap()).unwrap();
        let dec = svd(&a).unwrap();
        assert!(dec.s[0] > 1e-2);
        assert!(dec.s[1] > 1e-3);
        for &s in &dec.s[2..] {
            assert!(s < 1e-3, "expected rank 2, got extra singular value {s}");
        }
    }

    #[test]
    fn svd_diagonal_matrix() {
        let mut a = Tensor::zeros(&[3, 3]);
        *a.at_mut(&[0, 0]) = 3.0;
        *a.at_mut(&[1, 1]) = 1.0;
        *a.at_mut(&[2, 2]) = 2.0;
        let dec = svd(&a).unwrap();
        assert!((dec.s[0] - 3.0).abs() < 1e-4);
        assert!((dec.s[1] - 2.0).abs() < 1e-4);
        assert!((dec.s[2] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn truncate_gives_best_low_rank() {
        let mut rng = Rng::seed_from(35);
        let a = Tensor::randn(&[9, 6], &mut rng);
        let dec = svd(&a).unwrap();
        let t2 = dec.truncate(2);
        assert_eq!(t2.u.shape(), &[9, 2]);
        assert_eq!(t2.vt.shape(), &[2, 6]);
        // Eckart–Young: residual equals sqrt of sum of discarded sv^2.
        let approx = t2.reconstruct().unwrap();
        let resid = a.sub(&approx).unwrap().norm();
        let expect: f32 = dec.s[2..].iter().map(|s| s * s).sum::<f32>().sqrt();
        assert!((resid - expect).abs() < 1e-2 * (1.0 + expect), "{resid} vs {expect}");
    }

    #[test]
    fn svd_rejects_bad_input() {
        assert!(svd(&Tensor::zeros(&[3])).is_err());
        assert!(svd(&Tensor::zeros(&[0, 3])).is_err());
        assert!(frobenius_sq(&Tensor::zeros(&[2, 2, 2])).is_err());
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn truncate_rank_zero_panics() {
        let dec = svd(&Tensor::eye(3)).unwrap();
        let _ = dec.truncate(0);
    }
}
