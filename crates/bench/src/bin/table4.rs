//! Regenerates **Table IV**: accuracy as a function of the HTT full/half
//! sub-convolution placement (FFHH / HHFF / HFHF / FHFH) on a 4-timestep
//! ResNet18.
//!
//! The paper's finding: placing the *full* sub-convolutions at the early
//! timesteps (FFHH) is best, consistent with SNNs capturing most
//! information early.

use ttsnn_bench::harness::average_rows;
use ttsnn_bench::{train_and_measure, ExperimentConfig};
use ttsnn_core::{HttSchedule, TtMode};
use ttsnn_data::StaticImages;
use ttsnn_snn::{ConvPolicy, ResNetConfig, ResNetSnn};
use ttsnn_tensor::Rng;

fn main() {
    println!("TABLE IV reproduction: HTT placement ablation (T=4)");
    println!("====================================================");
    let mut rng = Rng::seed_from(44);
    let cfg = ExperimentConfig { epochs: 10, ..ExperimentConfig::quick(4) };
    let ds = StaticImages::cifar10_like(16, 16).dataset(cfg.samples, &mut rng);
    println!("\n{:<10} {:>12} {:>12} {:>12}", "schedule", "acc (%)", "train-acc", "time (s)");
    for pattern in ["FFHH", "HHFF", "HFHF", "FHFH"] {
        let schedule = HttSchedule::from_pattern(pattern).expect("valid pattern");
        let policy = ConvPolicy::tt(TtMode::Htt(schedule));
        let runs: Vec<_> = [7u64, 13, 21]
            .iter()
            .map(|&seed| {
                let mut rng = Rng::seed_from(seed);
                let mut model =
                    ResNetSnn::new(ResNetConfig::resnet18(10, (16, 16), 8), &policy, &mut rng);
                let run_cfg = ExperimentConfig { seed, ..cfg };
                train_and_measure(&mut model, pattern, &ds, &run_cfg)
            })
            .collect();
        let row = average_rows(&runs);
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12.4}",
            pattern, row.test_accuracy, row.train_accuracy, row.step_seconds
        );
    }
    println!("\npaper reference: FFHH 91.19 > FHFH 90.89 ~ HHFF 90.94 > HFHF 90.68.");
}
