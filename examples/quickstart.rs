//! Quickstart: decompose a convolution into TT cores, run the three TT-SNN
//! pipelines, and merge back to a dense kernel (Eq. (6)).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tt_snn::core::vbmf::estimate_conv_rank;
use tt_snn::core::{ttsvd, TtConv, TtMode};
use tt_snn::tensor::{conv, Conv2dGeometry, Rng, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(42);

    // A "pre-trained" 32->32 channel 3x3 convolution weight. We build it
    // with low TT-rank structure plus noise so VBMF has something to find.
    let structured = ttsvd::TtCores::randn(32, 32, 6, &mut rng);
    let dense = tt_snn::core::merge::merge_stt(&structured)?
        .add(&Tensor::randn(&[32, 32, 3, 3], &mut rng).scale(5e-3))?;

    // Algorithm 1, line 2: VBMF rank selection.
    let rank = estimate_conv_rank(&dense)?;
    println!("VBMF-estimated TT-rank: {rank} (ground truth structure: 6)");

    // Algorithm 1, lines 3-5: initialize TT cores by TT-SVD.
    let stt = TtConv::from_dense(&dense, rank, TtMode::Stt)?;
    let ptt = TtConv::from_dense(&dense, rank, TtMode::Ptt)?;
    let htt = TtConv::from_dense(&dense, rank, TtMode::htt_default(4))?;
    println!(
        "dense params: {}   TT params: {} ({:.2}x compression)",
        32 * 32 * 9,
        stt.num_params(),
        (32.0 * 32.0 * 9.0) / stt.num_params() as f64
    );

    // Run all three pipelines on one input.
    let x = Tensor::rand_uniform(&[1, 32, 16, 16], 0.0, 1.0, &mut rng);
    for (name, layer) in [("STT", &stt), ("PTT", &ptt), ("HTT", &htt)] {
        let y = layer.forward_tensor(&x, 0)?;
        println!("{name} forward: output {:?}, {} MACs", y.shape(), layer.macs((16, 16), 0));
    }
    println!("HTT half-timestep MACs: {}", htt.macs((16, 16), 3));

    // STT is an exact factorization: the merged kernel reproduces the
    // sequential forward bit-for-bit (up to float tolerance).
    let merged = stt.merge()?;
    let geom = Conv2dGeometry::new(32, 32, (16, 16), (3, 3), (1, 1), (1, 1));
    let via_dense = conv::conv2d(&x, &merged, &geom)?;
    let via_tt = stt.forward_tensor(&x, 0)?;
    println!("merge-back check (STT): max |dense - TT| = {:.2e}", via_dense.max_abs_diff(&via_tt)?);

    // And how well does the rank-r STT approximate the original kernel?
    let err = merged.sub(&dense)?.norm() / dense.norm();
    println!("relative reconstruction error vs original weight: {err:.3}");
    Ok(())
}
