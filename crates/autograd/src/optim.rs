//! Optimizers and learning-rate schedules.
//!
//! The paper trains with SGD (momentum 0.9, weight decay 1e-4) under a
//! cosine-annealing schedule starting at 0.1 — [`Sgd`] and
//! [`CosineAnnealing`] implement exactly that.

use ttsnn_tensor::Tensor;

use crate::var::Var;

/// Hyper-parameters for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (paper: 0.9).
    pub momentum: f32,
    /// Decoupled L2 weight decay (paper: 1e-4).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    /// The paper's training hyper-parameters: lr 0.1, momentum 0.9,
    /// weight decay 1e-4.
    fn default() -> Self {
        Self { lr: 0.1, momentum: 0.9, weight_decay: 1e-4 }
    }
}

/// Stochastic gradient descent with momentum and weight decay over a fixed
/// set of parameters.
///
/// ```
/// use ttsnn_autograd::{Sgd, SgdConfig, Var};
/// use ttsnn_tensor::Tensor;
///
/// # fn main() -> Result<(), ttsnn_tensor::ShapeError> {
/// let w = Var::param(Tensor::from_vec(vec![1.0], &[1])?);
/// let mut opt = Sgd::new(vec![w.clone()], SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.0 });
/// let loss = w.mul(&w)?.sum_to_scalar(); // dL/dw = 2w = 2
/// loss.backward();
/// opt.step();
/// assert!((w.to_tensor().data()[0] - 0.8).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Var>,
    velocity: Vec<Tensor>,
    config: SgdConfig,
}

impl Sgd {
    /// Creates an optimizer over `params`.
    pub fn new(params: Vec<Var>, config: SgdConfig) -> Self {
        let velocity = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Self { params, velocity, config }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.config.lr
    }

    /// Overrides the learning rate (used by schedulers).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Number of parameters managed.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Applies one update: `v ← μ·v + (g + λ·w)`, `w ← w − lr·v`.
    /// Parameters with no accumulated gradient are skipped.
    pub fn step(&mut self) {
        let SgdConfig { lr, momentum, weight_decay } = self.config;
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            let Some(g) = p.grad() else { continue };
            p.update_value(|w| {
                // g_eff = g + wd * w
                let mut g_eff = g.clone();
                if weight_decay != 0.0 {
                    g_eff.add_scaled(w, weight_decay).expect("weight decay shape");
                }
                // v = momentum * v + g_eff
                *v = v.scale(momentum);
                v.add_scaled(&g_eff, 1.0).expect("velocity shape");
                // w -= lr * v
                w.add_scaled(v, -lr).expect("param update shape");
            });
        }
    }

    /// Clears all parameter gradients (call between batches).
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Cosine-annealing learning-rate schedule:
/// `lr(e) = lr_min + (lr_max − lr_min)·(1 + cos(π·e/E))/2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineAnnealing {
    /// Initial (maximum) learning rate.
    pub lr_max: f32,
    /// Final (minimum) learning rate.
    pub lr_min: f32,
    /// Total number of epochs `E`.
    pub epochs: usize,
}

impl CosineAnnealing {
    /// Creates the paper's schedule: decays from `lr_max` to 0 over
    /// `epochs`.
    pub fn new(lr_max: f32, epochs: usize) -> Self {
        Self { lr_max, lr_min: 0.0, epochs }
    }

    /// Learning rate at the given (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        if self.epochs == 0 {
            return self.lr_max;
        }
        let e = epoch.min(self.epochs) as f32 / self.epochs as f32;
        self.lr_min + (self.lr_max - self.lr_min) * (1.0 + (std::f32::consts::PI * e).cos()) / 2.0
    }

    /// Updates `opt`'s learning rate for `epoch`.
    pub fn apply(&self, opt: &mut Sgd, epoch: usize) {
        opt.set_lr(self.lr_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_plain_step() {
        let w = Var::param(Tensor::from_vec(vec![2.0, -1.0], &[2]).unwrap());
        let mut opt =
            Sgd::new(vec![w.clone()], SgdConfig { lr: 0.5, momentum: 0.0, weight_decay: 0.0 });
        let loss = w.mul(&w).unwrap().sum_to_scalar();
        loss.backward();
        opt.step();
        // w -= 0.5 * 2w  => w/2... w = [2,-1] -> grad [4,-2] -> w = [0, 0]
        assert_eq!(w.to_tensor().data(), &[0.0, 0.0]);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let w = Var::param(Tensor::from_vec(vec![0.0], &[1]).unwrap());
        let mut opt =
            Sgd::new(vec![w.clone()], SgdConfig { lr: 1.0, momentum: 0.5, weight_decay: 0.0 });
        // constant gradient of 1.0 twice
        for _ in 0..2 {
            opt.zero_grad();
            let loss = w.clone().add_scalar(0.0).sum_to_scalar();
            loss.backward();
            opt.step();
        }
        // step1: v=1, w=-1; step2: v=0.5+1=1.5, w=-2.5
        assert!((w.to_tensor().data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn sgd_weight_decay_shrinks_params() {
        let w = Var::param(Tensor::from_vec(vec![10.0], &[1]).unwrap());
        let mut opt =
            Sgd::new(vec![w.clone()], SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.1 });
        // zero loss gradient; decay alone should shrink w
        let loss = w.scale(0.0).sum_to_scalar();
        loss.backward();
        opt.step();
        assert!((w.to_tensor().data()[0] - 9.9).abs() < 1e-5);
    }

    #[test]
    fn sgd_skips_params_without_grad() {
        let w = Var::param(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let untouched = Var::param(Tensor::from_vec(vec![5.0], &[1]).unwrap());
        let mut opt = Sgd::new(vec![w.clone(), untouched.clone()], SgdConfig::default());
        let loss = w.mul(&w).unwrap().sum_to_scalar();
        loss.backward();
        opt.step();
        assert_eq!(untouched.to_tensor().data(), &[5.0]);
        assert_eq!(opt.num_params(), 2);
    }

    #[test]
    fn zero_grad_clears() {
        let w = Var::param(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let opt = Sgd::new(vec![w.clone()], SgdConfig::default());
        w.mul(&w).unwrap().sum_to_scalar().backward();
        assert!(w.grad().is_some());
        opt.zero_grad();
        assert!(w.grad().is_none());
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let sched = CosineAnnealing::new(0.1, 100);
        assert!((sched.lr_at(0) - 0.1).abs() < 1e-7);
        assert!(sched.lr_at(100) < 1e-7);
        assert!((sched.lr_at(50) - 0.05).abs() < 1e-7);
    }

    #[test]
    fn cosine_schedule_monotone_decreasing() {
        let sched = CosineAnnealing::new(0.1, 40);
        let mut prev = f32::INFINITY;
        for e in 0..=40 {
            let lr = sched.lr_at(e);
            assert!(lr <= prev + 1e-9);
            prev = lr;
        }
    }

    #[test]
    fn cosine_applies_to_optimizer() {
        let w = Var::param(Tensor::zeros(&[1]));
        let mut opt = Sgd::new(vec![w], SgdConfig::default());
        let sched = CosineAnnealing::new(0.2, 10);
        sched.apply(&mut opt, 5);
        assert!((opt.lr() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_epochs_is_constant() {
        let sched = CosineAnnealing::new(0.3, 0);
        assert_eq!(sched.lr_at(0), 0.3);
        assert_eq!(sched.lr_at(7), 0.3);
    }

    #[test]
    fn training_converges_on_linear_regression() {
        use ttsnn_tensor::Rng;
        let mut rng = Rng::seed_from(60);
        // y = X w_true, learn w from scratch
        let x = Var::constant(Tensor::randn(&[16, 3], &mut rng));
        let w_true = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3, 1]).unwrap();
        let y = Var::constant(x.value().matmul(&w_true).unwrap());
        let w = Var::param(Tensor::zeros(&[3, 1]));
        let mut opt =
            Sgd::new(vec![w.clone()], SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0 });
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            opt.zero_grad();
            let pred = x.matmul(&w).unwrap();
            let err = pred.sub(&y).unwrap();
            let loss = err.mul(&err).unwrap().mean_to_scalar();
            last = loss.to_tensor().data()[0];
            loss.backward();
            opt.step();
        }
        assert!(last < 1e-3, "final loss {last}");
        assert!(w.to_tensor().max_abs_diff(&w_true).unwrap() < 0.05);
    }
}
