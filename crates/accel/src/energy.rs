//! Per-operation energies at 28 nm and the energy breakdown container.
//!
//! Dynamic energies follow the usual published scalings (Horowitz ISSCC'14
//! numbers shrunk from 45 nm to 28 nm; CACTI-style SRAM access costs by
//! array size; LPDDR access ~100 pJ/B). The absolute values matter less
//! than their *ratios* — multiplier vs accumulate-only PEs, SRAM vs DRAM —
//! which drive every effect in Fig. 4. All values are picojoules.

use serde::{Deserialize, Serialize};

/// Per-op energy constants (pJ) and modeling factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One 8-bit multiply + 16-bit accumulate (the MAC of clusters 2–4,
    /// which process non-spike activations).
    pub mac_pj: f64,
    /// One 16-bit accumulate only (the simplified spike-input PEs of
    /// cluster 1 / the SATA baseline — "since the input is in the form of
    /// spikes, we simplified the arithmetic units").
    pub accumulate_pj: f64,
    /// Global-buffer SRAM access per byte.
    pub sram_pj_per_byte: f64,
    /// Register-file / scratch-pad access per byte (the third level of the
    /// memory hierarchy).
    pub rf_pj_per_byte: f64,
    /// Off-chip DRAM access per byte.
    pub dram_pj_per_byte: f64,
    /// Static (leakage) energy per cycle for the whole chip.
    pub static_pj_per_cycle: f64,
    /// Average spike activity (fraction of binary activations that are 1);
    /// spike-driven compute and spike traffic scale with it.
    pub spike_activity: f64,
    /// Backward-pass cost multiplier: BPTT's backward phase performs the
    /// transposed convolutions plus weight-gradient accumulation, ~2× the
    /// forward op count.
    pub backward_factor: f64,
    /// Bytes per non-spike activation (16-bit).
    pub activation_bytes: f64,
    /// Bytes per weight (8-bit, Table I multiplier precision).
    pub weight_bytes: f64,
    /// One fp32 multiply + accumulate — what a CPU/GPU float serving plan
    /// pays per MAC, for pricing f32 plans against the accelerator's
    /// int8 datapath (Horowitz ISSCC'14 fp32 numbers shrunk to 28 nm).
    pub f32_mac_pj: f64,
}

impl EnergyModel {
    /// The default 28 nm calibration used for Fig. 4.
    pub fn nm28() -> Self {
        Self {
            mac_pj: 0.22,
            accumulate_pj: 0.03,
            sram_pj_per_byte: 1.2,
            rf_pj_per_byte: 0.08,
            dram_pj_per_byte: 100.0,
            static_pj_per_cycle: 45.0,
            spike_activity: 0.25,
            backward_factor: 2.0,
            activation_bytes: 2.0,
            weight_bytes: 1.0,
            f32_mac_pj: 1.8,
        }
    }
}

/// Numeric precision of a frozen serving plan, for [`serving_energy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingPrecision {
    /// Float plan: fp32 MACs, 4-byte weights and activations.
    F32,
    /// Quantized plan: the accelerator's 8-bit multiplier / 16-bit
    /// accumulator datapath (Table I), 1-byte weights, 1-byte quantized
    /// activations.
    Int8,
}

impl ServingPrecision {
    /// Bytes per weight at this precision.
    pub fn weight_bytes(&self) -> f64 {
        match self {
            ServingPrecision::F32 => 4.0,
            ServingPrecision::Int8 => 1.0,
        }
    }

    /// Bytes per (non-spike) activation at this precision.
    pub fn activation_bytes(&self) -> f64 {
        match self {
            ServingPrecision::F32 => 4.0,
            ServingPrecision::Int8 => 1.0,
        }
    }
}

/// Energy of serving **one sample** through a frozen inference plan
/// (forward only — no BPTT terms), at the given precision:
///
/// * compute — `macs_per_timestep × timesteps` at the precision's MAC
///   cost ([`EnergyModel::mac_pj`] is exactly the accelerator's 8-bit
///   multiply + 16-bit accumulate, so the int8 plan prices its MACs at
///   the Table I datapath);
/// * SRAM — weights streamed from the global buffer once per timestep
///   plus activation traffic, both at the precision's byte widths;
/// * DRAM — the plan's weights fetched once per sample (frozen plans
///   share weights across timesteps).
///
/// This is the accounting the `quant_throughput` bench quotes next to
/// the measured CPU numbers: the *measured* speedup is a CPU artifact,
/// the *modeled* energy is what the paper's accelerator would pay.
pub fn serving_energy(
    macs_per_timestep: f64,
    weight_params: f64,
    activation_elems_per_timestep: f64,
    timesteps: f64,
    precision: ServingPrecision,
    m: &EnergyModel,
) -> EnergyBreakdown {
    let mac_pj = match precision {
        ServingPrecision::F32 => m.f32_mac_pj,
        ServingPrecision::Int8 => m.mac_pj,
    };
    let weight_bytes = weight_params * precision.weight_bytes();
    // Activations are written by one layer and read by the next: 2 trips.
    let activation_bytes =
        activation_elems_per_timestep * timesteps * 2.0 * precision.activation_bytes();
    EnergyBreakdown {
        compute_pj: macs_per_timestep * timesteps * mac_pj,
        sram_pj: (weight_bytes * timesteps + activation_bytes) * m.sram_pj_per_byte,
        dram_pj: weight_bytes * m.dram_pj_per_byte,
        ..EnergyBreakdown::default()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::nm28()
    }
}

/// Energy report for one training pass of one image (forward + backward
/// across all timesteps), in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Arithmetic (MAC/accumulate) energy.
    pub compute_pj: f64,
    /// Global-buffer + scratch-pad traffic energy.
    pub sram_pj: f64,
    /// Off-chip DRAM traffic energy.
    pub dram_pj: f64,
    /// Leakage energy (static power × runtime).
    pub static_pj: f64,
    /// Total runtime in cycles.
    pub cycles: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj + self.static_pj
    }

    /// Total energy in nanojoules (the unit of Fig. 4's y-axis).
    pub fn total_nj(&self) -> f64 {
        self.total_pj() / 1e3
    }

    /// Accumulates another breakdown (e.g. per-layer into per-network).
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.compute_pj += other.compute_pj;
        self.sram_pj += other.sram_pj;
        self.dram_pj += other.dram_pj;
        self.static_pj += other.static_pj;
        self.cycles += other.cycles;
    }

    /// Relative change versus a reference total: `(self - ref) / ref`.
    pub fn relative_to(&self, reference: &EnergyBreakdown) -> f64 {
        (self.total_pj() - reference.total_pj()) / reference.total_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_sane_ratios() {
        let m = EnergyModel::nm28();
        assert!(m.mac_pj > m.accumulate_pj, "multiplier must cost more than accumulate");
        assert!(m.dram_pj_per_byte > 10.0 * m.sram_pj_per_byte, "DRAM ≫ SRAM");
        assert!(m.sram_pj_per_byte > m.rf_pj_per_byte, "SRAM > scratch-pad");
        assert!((0.0..=1.0).contains(&m.spike_activity));
        assert!(m.f32_mac_pj > 4.0 * m.mac_pj, "fp32 MAC must dwarf the int8 datapath");
    }

    #[test]
    fn int8_serving_beats_f32_on_every_term() {
        let m = EnergyModel::nm28();
        // VGG9-ish inference: 40M MACs/timestep, 5M weights, 1M
        // activations, T = 4.
        let f32 = serving_energy(40e6, 5e6, 1e6, 4.0, ServingPrecision::F32, &m);
        let int8 = serving_energy(40e6, 5e6, 1e6, 4.0, ServingPrecision::Int8, &m);
        assert!(int8.compute_pj < f32.compute_pj / 4.0, "int8 compute must be ≥4x cheaper");
        assert!(int8.sram_pj * 3.0 < f32.sram_pj, "1-byte traffic must be ~4x cheaper");
        assert!(int8.dram_pj * 3.0 < f32.dram_pj, "1-byte weight fetch must be ~4x cheaper");
        assert!(int8.total_pj() < f32.total_pj() / 3.0);
        // Both scale linearly in timesteps.
        let int8_t8 = serving_energy(40e6, 5e6, 1e6, 8.0, ServingPrecision::Int8, &m);
        assert!((int8_t8.compute_pj - 2.0 * int8.compute_pj).abs() < 1e-3);
    }

    #[test]
    fn serving_precision_byte_widths() {
        assert_eq!(ServingPrecision::Int8.weight_bytes(), 1.0);
        assert_eq!(ServingPrecision::F32.weight_bytes(), 4.0);
        assert_eq!(ServingPrecision::Int8.activation_bytes(), 1.0);
        assert_eq!(ServingPrecision::F32.activation_bytes(), 4.0);
    }

    #[test]
    fn breakdown_totals_and_add() {
        let mut a = EnergyBreakdown {
            compute_pj: 1.0,
            sram_pj: 2.0,
            dram_pj: 3.0,
            static_pj: 4.0,
            cycles: 10.0,
        };
        assert_eq!(a.total_pj(), 10.0);
        assert_eq!(a.total_nj(), 0.01);
        let b = a;
        a.add(&b);
        assert_eq!(a.total_pj(), 20.0);
        assert_eq!(a.cycles, 20.0);
    }

    #[test]
    fn relative_to_signs() {
        let base = EnergyBreakdown { compute_pj: 100.0, ..Default::default() };
        let less = EnergyBreakdown { compute_pj: 40.0, ..Default::default() };
        assert!((less.relative_to(&base) + 0.6).abs() < 1e-12);
        assert!(base.relative_to(&less) > 0.0);
    }
}
