//! Micro-bench of the convolution kernels underlying every result: one
//! dense 3×3 convolution vs the four-stage TT pipelines (STT/PTT) and the
//! HTT half path, at the same layer geometry.

use criterion::{criterion_group, criterion_main, Criterion};
use ttsnn_core::{TtConv, TtMode};
use ttsnn_tensor::{conv, Conv2dGeometry, Rng, Tensor};

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_forward_64ch_16x16");
    let mut rng = Rng::seed_from(1);
    let (i, o, hw) = (64usize, 64usize, (16usize, 16usize));
    let x = Tensor::randn(&[1, i, hw.0, hw.1], &mut rng);
    let dense_w = Tensor::kaiming(&[o, i, 3, 3], &mut rng);
    let geom = Conv2dGeometry::new(i, o, hw, (3, 3), (1, 1), (1, 1));
    group.bench_function("dense_3x3", |b| {
        b.iter(|| conv::conv2d(&x, &dense_w, &geom).expect("conv"))
    });
    // rank ~ paper's VBMF fraction of width
    let rank = 20;
    for (name, mode) in [("stt", TtMode::Stt), ("ptt", TtMode::Ptt)] {
        let layer = TtConv::randn(i, o, rank, mode, &mut rng);
        group.bench_function(name, |b| b.iter(|| layer.forward_tensor(&x, 0).expect("tt")));
    }
    let htt = TtConv::randn(i, o, rank, TtMode::htt_default(4), &mut rng);
    group.bench_function("htt_half_path", |b| {
        b.iter(|| htt.forward_tensor(&x, 3).expect("htt half"))
    });
    group.finish();
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
