//! Hardware implementation parameters (Table I of the paper).

use serde::{Deserialize, Serialize};

/// The accelerator configuration of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Process technology in nanometres (paper: 28 nm CMOS).
    pub technology_nm: u32,
    /// Number of computation clusters (paper: 4).
    pub num_clusters: usize,
    /// Processing elements per cluster (paper: 32).
    pub pes_per_cluster: usize,
    /// Scratch-pad bytes per PE (paper: 32 B).
    pub scratchpad_bytes_per_pe: usize,
    /// Filter (weight) global buffer in bytes (paper: 144 KB).
    pub filter_buffer_bytes: usize,
    /// Output global buffer in bytes (paper: 32 KB).
    pub output_buffer_bytes: usize,
    /// Membrane-potential buffer in bytes (paper: 32 KB).
    pub membrane_buffer_bytes: usize,
    /// Input spike buffer in bytes (paper: 32 KB).
    pub input_spike_buffer_bytes: usize,
    /// Output spike buffer in bytes (paper: 32 KB).
    pub output_spike_buffer_bytes: usize,
    /// Accumulator precision in bits (paper: 16).
    pub accumulator_bits: u32,
    /// Multiplier precision in bits (paper: 8).
    pub multiplier_bits: u32,
    /// Clock frequency in MHz (paper: 400).
    pub clock_mhz: u32,
}

impl AcceleratorConfig {
    /// The exact configuration of Table I.
    pub fn paper() -> Self {
        Self {
            technology_nm: 28,
            num_clusters: 4,
            pes_per_cluster: 32,
            scratchpad_bytes_per_pe: 32,
            filter_buffer_bytes: 144 * 1024,
            output_buffer_bytes: 32 * 1024,
            membrane_buffer_bytes: 32 * 1024,
            input_spike_buffer_bytes: 32 * 1024,
            output_spike_buffer_bytes: 32 * 1024,
            accumulator_bits: 16,
            multiplier_bits: 8,
            clock_mhz: 400,
        }
    }

    /// Total global buffer size (paper: 272 KB = 144 + 4×32).
    pub fn total_global_buffer_bytes(&self) -> usize {
        self.filter_buffer_bytes
            + self.output_buffer_bytes
            + self.membrane_buffer_bytes
            + self.input_spike_buffer_bytes
            + self.output_spike_buffer_bytes
    }

    /// Total PE count across all clusters.
    pub fn total_pes(&self) -> usize {
        self.num_clusters * self.pes_per_cluster
    }
}

impl Default for AcceleratorConfig {
    /// Defaults to the paper's Table I.
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        let c = AcceleratorConfig::paper();
        assert_eq!(c.total_global_buffer_bytes(), 272 * 1024);
        assert_eq!(c.total_pes(), 128);
        assert_eq!(c.technology_nm, 28);
        assert_eq!(c.accumulator_bits, 16);
        assert_eq!(c.multiplier_bits, 8);
        assert_eq!(c.clock_mhz, 400);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(AcceleratorConfig::default(), AcceleratorConfig::paper());
    }

    #[test]
    fn config_is_serializable() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<AcceleratorConfig>();
    }
}
