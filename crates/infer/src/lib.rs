//! # ttsnn-infer
//!
//! The serving side of the two-plane model API: an [`Engine`] loads a
//! **frozen execution plan** — architecture config + checkpoint,
//! optionally merged back into dense kernels (Algorithm 1, lines 20–22) —
//! onto a dedicated executor thread, and [`Session`]s feed it concurrent
//! single-sample requests. Requests are **coalesced into micro-batches**
//! under a [`BatchPolicy`] (`max_batch` / `max_wait`) and executed
//! graph-free on the inference plane (`ttsnn_snn::InferForward`), where
//! every conv/GEMM fans out over the persistent kernel worker pool.
//!
//! ## Determinism contract
//!
//! The plan runs in [`ttsnn_snn::InferStats::PerSample`] mode: every
//! sample is processed exactly as if it were alone in a batch. A
//! request's logits are therefore **bit-identical** whatever requests it
//! happened to be coalesced with, whatever the arrival order, and
//! whatever `TTSNN_NUM_THREADS` says — and equal, bit for bit, to a
//! batch-of-1 pass through the training plane. Batching changes
//! wall-clock only. `crates/infer/tests/engine.rs` pins all of this.
//!
//! ## Quickstart
//!
//! ```
//! use ttsnn_infer::{ArchSpec, BatchPolicy, Engine, EngineConfig};
//! use ttsnn_snn::{checkpoint, ConvPolicy, SpikingModel, VggConfig, VggSnn};
//! use ttsnn_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Train-side: build (or train) a model and checkpoint it.
//! let cfg = VggConfig::vgg9(3, 5, (8, 8), 16);
//! let model = VggSnn::new(cfg.clone(), &ConvPolicy::Baseline, &mut Rng::seed_from(7));
//! let mut ckpt = Vec::new();
//! checkpoint::save_params(&model.params(), &mut ckpt)?;
//!
//! // Serve-side: freeze a plan and submit a request.
//! let engine = Engine::load(
//!     EngineConfig::new(ArchSpec::Vgg(cfg), ConvPolicy::Baseline, 2),
//!     ckpt.as_slice(),
//! )?;
//! let session = engine.session();
//! let logits = session.infer(Tensor::zeros(&[3, 8, 8]))?;
//! assert_eq!(logits.shape(), &[5]);
//! # Ok(())
//! # }
//! ```

//! ## Scaling out: the serving cluster
//!
//! One executor thread saturates one machine's kernel pool per batch, but
//! per-request latency under load wants **replicas**: [`Cluster`] freezes
//! the same plan once and serves it from N executor replicas behind a
//! central priority/deadline scheduler — weights `Arc`-shared (loaded
//! once, never duplicated), requests carrying [`Priority`] classes and
//! optional deadlines, cancellation by dropping a [`ClusterTicket`],
//! bounded-queue backpressure via [`ClusterSession::try_submit`], and
//! live [`ClusterMetrics`]. The determinism contract extends verbatim:
//! per-sample logits are bit-identical whatever the replica count,
//! scheduling order, or cancellation interleaving. See [`cluster`],
//! [`sched`] and [`metrics`].
//!
//! ## The quantized plane
//!
//! [`Engine::load_quantized`] / [`Cluster::load_quantized`] freeze the
//! same checkpoint into an **int8 plan**: TT cores merged to dense, a
//! calibration pass fixes static activation scales ([`QuantSpec`]), and
//! every conv + the classifier runs on the i8×i8→i32 kernels of
//! `ttsnn_tensor::qkernels` (per-output-channel scales; optional
//! accelerator-faithful saturating i16 accumulators — PAPER Table I).
//! Integer accumulation is exact, so quantized logits are bit-identical
//! across thread counts, replica counts, and batch compositions; the
//! int8 plane executes exactly the grid `ttsnn_core::quant`'s fake-quant
//! simulated during QAT. [`plan_drift`] quotes the int8-vs-f32 logit
//! drift and prediction agreement on a request set.

//! ## Streaming sessions
//!
//! A live client (an event camera, a sensor) produces its timesteps
//! incrementally. [`Session::open_stream`] / `ClusterSession::open_stream`
//! pin a **stateful streaming session** to an executor: the LIF membrane
//! state stays resident between chunks (moved, never copied), each
//! [`StreamSession::feed`] advances the session by its chunk's timesteps
//! at the correct *absolute* `t`, and every update carries the cumulative
//! logits — an **any-time output**. The headline guarantee: feeding a
//! `T`-timestep input in chunks of any sizes is **bit-identical, after
//! every prefix,** to submitting it whole, on both the f32 and int8
//! planes. An optional [`EarlyExit`] margin readout stops integrating
//! once the cumulative top-1/top-2 logit gap clears a threshold —
//! skipped timesteps are banked as MAC savings
//! ([`StreamUpdate::macs_skipped`]). Cluster sessions are replica-pinned,
//! count toward queue backpressure, may carry per-chunk deadlines, and
//! their resident state is bounded (`ClusterConfig::stream_state_bytes` /
//! `TTSNN_STREAM_STATE_BYTES`) by LRU eviction that provably never
//! perturbs a surviving session's bits; [`metrics::SessionMetrics`]
//! keeps it all observable. `crates/infer/tests/stream.rs` pins the
//! whole contract.

#![warn(missing_docs)]

mod engine;
mod stream;

pub mod cluster;
pub mod metrics;
pub mod sched;

pub use cluster::{
    Cluster, ClusterConfig, ClusterSession, ClusterStreamSession, ClusterStreamTicket,
    ClusterTicket,
};
pub use engine::{
    plan_drift, ArchSpec, BatchPolicy, Engine, EngineConfig, InferError, PlanDrift, PlanInfo,
    QuantInfo, QuantSpec, Session, SpikeDensityReport, StreamSession, StreamTicket, Ticket,
};
pub use metrics::{ClusterMetrics, SessionMetrics, TenantStats, MAX_TRACKED_TENANTS};
pub use sched::{
    FairPolicy, Priority, RateLimit, RejectInfo, SubmitError, SubmitOptions, TenantId, TenantPolicy,
};
pub use stream::{EarlyExit, StreamOptions, StreamUpdate};
