//! The [`SpikingModel`] trait: what the BPTT trainer needs from a network.

use ttsnn_autograd::Var;
use ttsnn_tensor::ShapeError;

/// A timestep-unrolled spiking network.
///
/// Implementations hold LIF membrane state between calls to
/// [`SpikingModel::forward_timestep`]; the trainer drives the unrolling
/// (Algorithm 1, lines 7–15): reset, then one forward per timestep, then a
/// loss on the accumulated logits, then one `backward()` that spans the
/// entire spatio-temporal graph.
pub trait SpikingModel {
    /// Processes the input frame at timestep `t`, returning `(B, K)`
    /// logits for this timestep.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the input does not match the architecture.
    fn forward_timestep(&mut self, x: &Var, t: usize) -> Result<Var, ShapeError>;

    /// All trainable parameters.
    fn params(&self) -> Vec<Var>;

    /// Clears all membrane state (must be called between batches).
    fn reset_state(&mut self);

    /// Total trainable parameter count.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.value().len()).sum()
    }

    /// Human-readable architecture name.
    fn name(&self) -> String;

    /// Forward MAC count for one sample at timestep `t` (for FLOPs
    /// reporting on the *constructed* network, complementing the analytic
    /// full-size specs in `ttsnn_core::flops`).
    fn macs_at(&self, t: usize) -> usize;

    /// Mean spike activity observed across all LIF layers since training
    /// started (spikes per neuron per timestep), or `None` if the model
    /// has not run. Default: not tracked.
    fn mean_spike_activity(&self) -> Option<f64> {
        None
    }
}
