//! Ablation bench (DESIGN.md): TT forward cost as a function of the
//! TT-rank — the knob VBMF sets per layer. Quadratic in `r` for the
//! asymmetric cores, linear for the 1×1 cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ttsnn_core::{TtConv, TtMode};
use ttsnn_tensor::{Rng, Tensor};

fn bench_rank_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptt_forward_by_rank_64ch_16x16");
    let mut rng = Rng::seed_from(1);
    let x = Tensor::randn(&[1, 64, 16, 16], &mut rng);
    for rank in [4usize, 8, 16, 32, 64] {
        let layer = TtConv::randn(64, 64, rank, TtMode::Ptt, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter(|| layer.forward_tensor(&x, 0).expect("forward"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rank_sweep);
criterion_main!(benches);
