//! Criterion bench for the "training time" column of Table II: one full
//! optimization step (forward over all timesteps + BPTT backward + SGD)
//! per method on a width-scaled MS-ResNet18.
//!
//! Expected shape: STT/PTT/HTT all beat the baseline; HTT is fastest.

use criterion::{criterion_group, criterion_main, Criterion};
use ttsnn_autograd::{Sgd, SgdConfig};
use ttsnn_core::TtMode;
use ttsnn_data::StaticImages;
use ttsnn_snn::trainer::train_step;
use ttsnn_snn::{ConvPolicy, LossKind, ResNetConfig, ResNetSnn, SpikingModel};
use ttsnn_tensor::Rng;

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_train_step");
    group.sample_size(10);
    let timesteps = 4;
    let mut rng = Rng::seed_from(1);
    let ds = StaticImages::cifar10_like(16, 16).dataset(16, &mut rng);
    let batch = &ds.batches(8, timesteps, &mut rng).expect("batching")[0];
    for (name, policy) in [
        ("baseline", ConvPolicy::Baseline),
        ("STT", ConvPolicy::tt(TtMode::Stt)),
        ("PTT", ConvPolicy::tt(TtMode::Ptt)),
        ("HTT", ConvPolicy::tt(TtMode::htt_default(timesteps))),
    ] {
        let mut rng = Rng::seed_from(2);
        let mut model = ResNetSnn::new(ResNetConfig::resnet18(10, (16, 16), 8), &policy, &mut rng);
        let mut opt = Sgd::new(model.params(), SgdConfig::default());
        group.bench_function(name, |b| {
            b.iter(|| train_step(&mut model, batch, &mut opt, LossKind::SumCe).expect("train step"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
