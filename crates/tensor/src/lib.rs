//! # ttsnn-tensor
//!
//! Dense `f32` tensor kernels for the TT-SNN reproduction.
//!
//! This crate is the "PyTorch substrate" of the paper: everything the TT-SNN
//! modules and the SNN trainer need from a tensor library, implemented from
//! scratch:
//!
//! * [`Tensor`] — a contiguous, row-major n-dimensional `f32` array with
//!   elementwise arithmetic, reductions, reshaping and permutation.
//! * [`runtime`] — the parallel kernel runtime: a persistent channel-fed
//!   worker pool (sized from `available_parallelism`, overridable with
//!   `TTSNN_NUM_THREADS`), the blocked multi-threaded GEMM family
//!   (`gemm`, `gemm_at_b`, `gemm_a_bt`), and per-thread scratch arenas.
//! * [`conv`] — 2-D convolution (forward, input-gradient, weight-gradient)
//!   via im2col/col2im, batch-parallel through the runtime, supporting the
//!   asymmetric kernels (3×1, 1×3, 1×1) that the TT cores use.
//! * [`qkernels`] — the **int8 inference kernels**: i8×i8→i32 GEMM/conv
//!   with per-output-channel requantization and an accelerator-faithful
//!   saturating 16-bit accumulator mode, on the same worker pool.
//! * [`Tensor::matmul`] — matrix multiplication over the runtime kernels.
//! * [`linalg`] — one-sided Jacobi SVD (used by TT-SVD and VBMF).
//! * [`pool`] — average pooling and global average pooling with backward.
//! * [`Rng`] — a small deterministic xoshiro-style RNG so experiments are
//!   reproducible without threading `rand` generics through every API.
//!
//! ```
//! use ttsnn_tensor::{Tensor, Rng};
//!
//! # fn main() -> Result<(), ttsnn_tensor::ShapeError> {
//! let mut rng = Rng::seed_from(7);
//! let a = Tensor::randn(&[4, 8], &mut rng);
//! let b = Tensor::randn(&[8, 3], &mut rng);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[4, 3]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod rng;
mod shape;
mod tensor;

pub mod conv;
pub mod linalg;
pub mod pool;
pub mod qkernels;
pub mod runtime;
pub mod spike;

pub use error::ShapeError;
pub use rng::Rng;
pub use shape::{num_elements, strides_for};
pub use tensor::{matmul_into, Tensor};

/// Convolution geometry shared by the conv kernels and FLOP accounting.
pub use conv::Conv2dGeometry;
