//! Spiking MS-ResNet architectures (Hu et al., the paper's baseline) and
//! the ResNet20 variant used by the tdBN comparison of Table III.
//!
//! Topology follows the CIFAR-style residual network: a single 3×3 stem
//! (never decomposed — §III "the first CNN layer and the last classifier
//! are not decomposed"), basic blocks of two 3×3 convolutions with
//! BN + LIF, 1×1 projection shortcuts at stage boundaries, global average
//! pooling, and a fully-connected classifier on LIF spikes (Algorithm 1
//! line 14).
//!
//! The constructors take a `width_divisor` so the exact full-size topology
//! can be trained at CPU-feasible width (the substitution documented in
//! DESIGN.md §3); `width_divisor = 1` reproduces the full-size layer table
//! whose analytic params/FLOPs live in `ttsnn_core::flops`.

use ttsnn_autograd::Var;
use ttsnn_tensor::spike::{self, SparseMode, SpikeTensor};
use ttsnn_tensor::{pool, runtime, Rng, ShapeError, Tensor};

use crate::conv_unit::{ConvPolicy, ConvUnit};
use crate::lif::{Lif, LifConfig};
use crate::model::{
    linear_tensor_mode, InferForward, InferState, InferStats, SpikingModel, TrainForward,
};
use crate::norm::{Norm, NormKind};
use crate::quant::{
    self, calibration_frame_at, CalibRecorder, CalibStats, QuantConfig, QuantLinear,
    QuantPlanWeights, QuantReport,
};

/// Architecture hyper-parameters for [`ResNetSnn`].
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Display name.
    pub name: String,
    /// Input channels (3 for CIFAR-like, 2 for event data).
    pub in_channels: usize,
    /// Input spatial size.
    pub in_hw: (usize, usize),
    /// Number of classes.
    pub num_classes: usize,
    /// Blocks per stage (ResNet18: `[2,2,2,2]`, ResNet34: `[3,4,6,3]`,
    /// ResNet20: `[3,3,3]`).
    pub stage_blocks: Vec<usize>,
    /// Channel width per stage.
    pub widths: Vec<usize>,
    /// LIF neuron settings.
    pub lif: LifConfig,
    /// Normalization used after every convolution.
    pub norm: NormKind,
}

impl ResNetConfig {
    /// MS-ResNet18 topology at `width_divisor` (paper: CIFAR10/100).
    pub fn resnet18(num_classes: usize, in_hw: (usize, usize), width_divisor: usize) -> Self {
        Self::scaled("MS-ResNet18", 3, in_hw, num_classes, &[2, 2, 2, 2], width_divisor)
    }

    /// MS-ResNet34 topology at `width_divisor` with 2-channel event input
    /// (paper: N-Caltech101).
    pub fn resnet34_events(
        num_classes: usize,
        in_hw: (usize, usize),
        width_divisor: usize,
    ) -> Self {
        Self::scaled("MS-ResNet34", 2, in_hw, num_classes, &[3, 4, 6, 3], width_divisor)
    }

    /// MS-ResNet18 topology with 2-channel event input. Used for the
    /// *measured* event-data experiments: at CPU-feasible widths the
    /// 16-block ResNet34 suffers spike death (all-zero deep activity), so
    /// the measured substitute keeps the dataset's temporal statistics but
    /// the shallower topology (see DESIGN.md §3 and EXPERIMENTS.md).
    pub fn resnet18_events(
        num_classes: usize,
        in_hw: (usize, usize),
        width_divisor: usize,
    ) -> Self {
        Self::scaled("MS-ResNet18ev", 2, in_hw, num_classes, &[2, 2, 2, 2], width_divisor)
    }

    /// ResNet20 topology (tdBN baseline of Table III): 3 stages of widths
    /// 16/32/64 before scaling.
    pub fn resnet20(num_classes: usize, in_hw: (usize, usize), width_divisor: usize) -> Self {
        let widths = [16usize, 32, 64].iter().map(|w| (w / width_divisor).max(4)).collect();
        Self {
            name: "ResNet20".to_string(),
            in_channels: 3,
            in_hw,
            num_classes,
            stage_blocks: vec![3, 3, 3],
            widths,
            lif: LifConfig::default(),
            norm: NormKind::TdBn { alpha: 1.0, vth: 0.5 },
        }
    }

    fn scaled(
        name: &str,
        in_channels: usize,
        in_hw: (usize, usize),
        num_classes: usize,
        stage_blocks: &[usize],
        width_divisor: usize,
    ) -> Self {
        assert!(width_divisor > 0, "width_divisor must be positive");
        let widths = [64usize, 128, 256, 512].iter().map(|w| (w / width_divisor).max(4)).collect();
        Self {
            name: name.to_string(),
            in_channels,
            in_hw,
            num_classes,
            stage_blocks: stage_blocks.to_vec(),
            widths,
            lif: LifConfig::default(),
            norm: NormKind::TdBn { alpha: 1.0, vth: 0.5 },
        }
    }

    fn make_norm(&self, channels: usize) -> Norm {
        Norm::new(channels, self.norm)
    }
}

struct BasicBlock {
    conv_a: ConvUnit,
    norm_a: Norm,
    lif_a: Lif,
    conv_b: ConvUnit,
    norm_b: Norm,
    lif_b: Lif,
    shortcut: Option<(ConvUnit, Norm)>,
    in_hw: (usize, usize),
    out_hw: (usize, usize),
}

/// A spiking residual network with pluggable convolution policy.
///
/// ```
/// use ttsnn_snn::{ResNetConfig, ResNetSnn, ConvPolicy, SpikingModel, TrainForward};
/// use ttsnn_core::TtMode;
/// use ttsnn_autograd::Var;
/// use ttsnn_tensor::{Rng, Tensor};
///
/// # fn main() -> Result<(), ttsnn_tensor::ShapeError> {
/// let mut rng = Rng::seed_from(0);
/// let cfg = ResNetConfig::resnet18(10, (16, 16), 16); // narrow for the doc test
/// let mut net = ResNetSnn::new(cfg, &ConvPolicy::tt(TtMode::Ptt), &mut rng);
/// let x = Var::constant(Tensor::randn(&[2, 3, 16, 16], &mut rng));
/// let logits = net.forward_timestep(&x, 0)?;
/// assert_eq!(logits.shape(), vec![2, 10]);
/// # Ok(())
/// # }
/// ```
pub struct ResNetSnn {
    config: ResNetConfig,
    policy_name: &'static str,
    stem: ConvUnit,
    stem_norm: Norm,
    stem_lif: Lif,
    blocks: Vec<BasicBlock>,
    fc_w: Var,
    fc_b: Var,
    /// Quantized classifier head; `Some` once the model is frozen to the
    /// int8 serving plane.
    qfc: Option<QuantLinear>,
    /// Live calibration hook (only during [`ResNetSnn::calibrate`]).
    calib: Option<CalibRecorder>,
    infer_stats: InferStats,
    /// Sparse-dispatch override; `None` follows `TTSNN_SPARSE_MODE`.
    sparse_mode: Option<SparseMode>,
}

impl ResNetSnn {
    /// Builds the network under the given convolution policy.
    ///
    /// # Panics
    ///
    /// Panics if `config.stage_blocks` and `config.widths` lengths differ
    /// or the input is too small for the stage downsampling.
    pub fn new(config: ResNetConfig, policy: &ConvPolicy, rng: &mut Rng) -> Self {
        assert_eq!(config.stage_blocks.len(), config.widths.len(), "stage/width lists must align");
        let stem_out = config.widths[0];
        let stem = ConvUnit::dense(config.in_channels, stem_out, (3, 3), (1, 1), (1, 1), rng);
        let stem_norm = config.make_norm(stem_out);
        let stem_lif = Lif::new(config.lif);
        let mut blocks = Vec::new();
        let mut hw = config.in_hw;
        let mut c_in = stem_out;
        let mut conv_index = 0usize;
        for (stage, (&nblocks, &width)) in
            config.stage_blocks.iter().zip(config.widths.iter()).enumerate()
        {
            for b in 0..nblocks {
                let downsample = stage > 0 && b == 0;
                let stride = if downsample { (2, 2) } else { (1, 1) };
                let out_hw = if downsample { (hw.0.div_ceil(2), hw.1.div_ceil(2)) } else { hw };
                assert!(out_hw.0 >= 1 && out_hw.1 >= 1, "input too small for architecture");
                let conv_a = ConvUnit::conv3x3(policy, conv_index, c_in, width, stride, rng);
                conv_index += 1;
                let conv_b = ConvUnit::conv3x3(policy, conv_index, width, width, (1, 1), rng);
                conv_index += 1;
                let shortcut = if c_in != width || downsample {
                    Some((
                        ConvUnit::dense(c_in, width, (1, 1), stride, (0, 0), rng),
                        config.make_norm(width),
                    ))
                } else {
                    None
                };
                blocks.push(BasicBlock {
                    conv_a,
                    norm_a: config.make_norm(width),
                    lif_a: Lif::new(config.lif),
                    conv_b,
                    norm_b: config.make_norm(width),
                    lif_b: Lif::new(config.lif),
                    shortcut,
                    in_hw: hw,
                    out_hw,
                });
                hw = out_hw;
                c_in = width;
            }
        }
        let fc_w = Var::param(Tensor::kaiming(&[config.num_classes, c_in], rng));
        let fc_b = Var::param(Tensor::zeros(&[config.num_classes]));
        Self {
            policy_name: policy.name(),
            config,
            stem,
            stem_norm,
            stem_lif,
            blocks,
            fc_w,
            fc_b,
            qfc: None,
            calib: None,
            infer_stats: InferStats::default(),
            sparse_mode: None,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Overrides the inference plane's sparse-dispatch mode for this
    /// model instance (`None` follows the process-wide
    /// `TTSNN_SPARSE_MODE`). Because sparse and dense kernels are
    /// bit-identical, this changes performance only — tests use it to pin
    /// exactly that.
    pub fn set_sparse_mode(&mut self, mode: Option<SparseMode>) {
        self.sparse_mode = mode;
    }

    /// The sparse-dispatch mode the inference plane currently resolves to.
    pub fn sparse_dispatch_mode(&self) -> SparseMode {
        self.sparse_mode.unwrap_or_else(spike::sparse_mode)
    }

    /// Number of residual blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Snapshots of all TT conv layers (for merge-back / analysis), in
    /// network order. Empty for baseline networks.
    pub fn tt_layers(&self) -> Vec<&ttsnn_core::TtConv> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for c in [&b.conv_a, &b.conv_b] {
                if let ConvUnit::Tt(tt) = c {
                    out.push(tt);
                }
            }
        }
        out
    }

    /// Merges every TT convolution back into a dense kernel in place
    /// (Algorithm 1 lines 20–22): after this call the network runs
    /// spike-driven dense inference with no TT restructuring. Returns the
    /// number of layers merged.
    ///
    /// For HTT-trained networks the merged model uses the *full* (PTT)
    /// path weights at every timestep, as in the paper's inference
    /// pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any layer's cores became inconsistent
    /// (cannot happen through this API).
    pub fn merge_into_dense(&mut self) -> Result<usize, ShapeError> {
        let mut merged = 0usize;
        for b in &mut self.blocks {
            for conv in [&mut b.conv_a, &mut b.conv_b] {
                if let Some(dense) = conv.merged()? {
                    *conv = dense;
                    merged += 1;
                }
            }
        }
        if merged > 0 {
            self.policy_name = "merged-dense";
        }
        Ok(merged)
    }

    /// Whether the model has been frozen to the int8 serving plane.
    pub fn is_quantized(&self) -> bool {
        self.qfc.is_some()
    }

    /// All convolution sites in calibration/quantization order: stem,
    /// then per block `conv_a`, `conv_b`, shortcut (when present) — the
    /// exact order the inference plane's calibration hooks visit them.
    fn conv_sites_mut(&mut self) -> Vec<&mut ConvUnit> {
        let mut v = vec![&mut self.stem];
        for b in &mut self.blocks {
            v.push(&mut b.conv_a);
            v.push(&mut b.conv_b);
            if let Some((conv, _)) = &mut b.shortcut {
                v.push(conv);
            }
        }
        v
    }

    fn conv_sites(&self) -> Vec<&ConvUnit> {
        let mut v = vec![&self.stem];
        for b in &self.blocks {
            v.push(&b.conv_a);
            v.push(&b.conv_b);
            if let Some((conv, _)) = &b.shortcut {
                v.push(conv);
            }
        }
        v
    }

    /// Runs a calibration pass on the inference plane (see
    /// `VggSnn::calibrate`; identical contract).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if a frame does not match the architecture.
    pub fn calibrate(
        &mut self,
        frames: &[Tensor],
        timesteps: usize,
    ) -> Result<CalibStats, ShapeError> {
        let prev = self.infer_stats;
        self.infer_stats = InferStats::PerSample;
        self.calib = Some(CalibRecorder::default());
        let mut failed = None;
        'outer: for frame in frames {
            self.reset_state();
            for t in 0..timesteps {
                let input = match calibration_frame_at(frame, t, timesteps) {
                    Ok(i) => i,
                    Err(e) => {
                        failed = Some(e);
                        break 'outer;
                    }
                };
                if let Err(e) = self.forward_timestep_tensor(&input, t) {
                    failed = Some(e);
                    break 'outer;
                }
            }
        }
        self.reset_state();
        self.infer_stats = prev;
        let recorder = self.calib.take();
        match (failed, recorder) {
            (Some(e), _) => Err(e),
            (None, Some(rec)) => Ok(rec.into_stats(frames.len(), timesteps)),
            (None, None) => Err(ShapeError::new("calibrate: recorder lost".to_string())),
        }
    }

    /// Freezes every (dense) convolution — stem, block convs, shortcut
    /// projections — and the classifier to int8 using the calibrated
    /// activation scales. Requires TT layers to be merged first.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the calibration does not cover every
    /// site, a conv is still TT-decomposed, or weights are non-finite.
    pub fn quantize(
        &mut self,
        calib: &CalibStats,
        cfg: &QuantConfig,
    ) -> Result<QuantReport, ShapeError> {
        let sites = self.conv_sites().len();
        if calib.sites.len() != sites + 1 {
            return Err(ShapeError::new(format!(
                "quantize: calibration covered {} sites, model has {} convs + classifier",
                calib.sites.len(),
                sites
            )));
        }
        // Quantize the classifier FIRST: if it fails, no conv site has
        // been frozen yet and the model stays fully usable.
        let ql = QuantLinear::from_dense(
            &self.fc_w.value(),
            &self.fc_b.value(),
            calib.scale_for(sites),
            cfg,
        )?;
        let mut report = quant::quantize_conv_sites(self.conv_sites_mut(), calib, cfg)?;
        report.int8_bytes += ql.weights.storage_bytes();
        report.f32_bytes += (self.fc_w.value().len() + self.fc_b.value().len()) * 4;
        self.qfc = Some(ql);
        self.policy_name = "int8";
        Ok(report)
    }

    /// Exports the frozen int8 weights for O(1) sharing with sibling
    /// replicas (`None` until [`ResNetSnn::quantize`] has run).
    pub fn quant_plan(&self) -> Option<QuantPlanWeights> {
        quant::export_conv_sites(self.conv_sites(), self.qfc.as_ref())
    }

    /// Installs shared frozen int8 weights exported by a sibling
    /// replica's [`ResNetSnn::quant_plan`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the plan does not match the architecture.
    pub fn install_quant_plan(&mut self, plan: &QuantPlanWeights) -> Result<(), ShapeError> {
        // Validate the classifier BEFORE mutating any conv site, so a
        // mismatched plan cannot leave the model half-installed.
        let (fc, x_scale) = &plan.fc;
        if fc.out_features != self.config.num_classes || fc.in_features != self.fc_w.shape()[1] {
            return Err(ShapeError::new(
                "install_quant_plan: classifier shape mismatch".to_string(),
            ));
        }
        quant::install_conv_sites(self.conv_sites_mut(), &plan.convs, plan.accum)?;
        self.qfc = Some(QuantLinear {
            weights: std::sync::Arc::clone(fc),
            x_scale: *x_scale,
            accum: plan.accum,
        });
        self.policy_name = "int8";
        Ok(())
    }
}

impl TrainForward for ResNetSnn {
    fn forward_timestep(&mut self, x: &Var, t: usize) -> Result<Var, ShapeError> {
        let y = self.stem.forward(x, t)?;
        let y = self.stem_norm.forward(&y, t)?;
        let mut spikes = self.stem_lif.step(&y)?;
        for block in &mut self.blocks {
            let h = block.conv_a.forward(&spikes, t)?;
            let h = block.norm_a.forward(&h, t)?;
            let h = block.lif_a.step(&h)?;
            let y = block.conv_b.forward(&h, t)?;
            let y = block.norm_b.forward(&y, t)?;
            let sc = match &block.shortcut {
                Some((conv, norm)) => {
                    let s = conv.forward(&spikes, t)?;
                    norm.forward(&s, t)?
                }
                None => spikes.clone(),
            };
            spikes = block.lif_b.step(&y.add(&sc)?)?;
        }
        let pooled = spikes.global_avg_pool()?;
        pooled.linear(&self.fc_w, &self.fc_b)
    }
}

impl InferForward for ResNetSnn {
    fn forward_timestep_tensor(&mut self, x: &Tensor, t: usize) -> Result<Tensor, ShapeError> {
        let stats = self.infer_stats;
        let mode = self.sparse_dispatch_mode();
        // Taken (not borrowed) so the calibration hooks can observe inputs
        // while the block loop holds `&mut self.blocks`. Site order matches
        // `conv_sites`: stem, then per block conv_a, conv_b, shortcut.
        let mut calib = self.calib.take();
        let mut site = 0usize;
        if let Some(rec) = calib.as_mut() {
            rec.observe(site, x);
        }
        site += 1;
        let mut y = self.stem.forward_tensor_mode(x, t, mode)?;
        self.stem_norm.forward_tensor(&mut y, t, stats)?;
        let mut spikes = self.stem_lif.step_tensor(y)?;
        for block in &mut self.blocks {
            if let Some(rec) = calib.as_mut() {
                rec.observe(site, &spikes);
            }
            site += 1;
            let mut h = block.conv_a.forward_tensor_mode(&spikes, t, mode)?;
            block.norm_a.forward_tensor(&mut h, t, stats)?;
            let h = block.lif_a.step_tensor(h)?;
            if let Some(rec) = calib.as_mut() {
                rec.observe(site, &h);
            }
            site += 1;
            let mut y = block.conv_b.forward_tensor_mode(&h, t, mode)?;
            runtime::recycle_buffer(h.into_vec());
            block.norm_b.forward_tensor(&mut y, t, stats)?;
            // y += shortcut, the tensor twin of the Var path's y.add(&sc).
            match &block.shortcut {
                Some((conv, norm)) => {
                    if let Some(rec) = calib.as_mut() {
                        rec.observe(site, &spikes);
                    }
                    site += 1;
                    let mut sc = conv.forward_tensor_mode(&spikes, t, mode)?;
                    norm.forward_tensor(&mut sc, t, stats)?;
                    y.add_scaled(&sc, 1.0)?;
                    runtime::recycle_buffer(sc.into_vec());
                }
                None => y.add_scaled(&spikes, 1.0)?,
            }
            runtime::recycle_buffer(spikes.into_vec());
            spikes = block.lif_b.step_tensor(y)?;
        }
        let pooled = pool::global_avg_pool(&spikes)?;
        runtime::recycle_buffer(spikes.into_vec());
        if let Some(rec) = calib.as_mut() {
            rec.observe(site, &pooled);
        }
        self.calib = calib;
        match &self.qfc {
            Some(q) => {
                if mode != SparseMode::Off {
                    if let Some(sp) = SpikeTensor::try_pack(&pooled) {
                        if mode.routes_sparse(sp.density()) {
                            return q.forward_spikes(&sp);
                        }
                    }
                }
                q.forward_tensor(&pooled)
            }
            None => {
                linear_tensor_mode(&pooled, &self.fc_w.value(), &self.fc_b.value(), stats, mode)
            }
        }
    }

    fn set_infer_stats(&mut self, stats: InferStats) {
        self.infer_stats = stats;
    }

    fn infer_stats(&self) -> InferStats {
        self.infer_stats
    }

    fn take_infer_state(&mut self) -> InferState {
        // Same order as `reset_state` / `layer_spike_densities`: stem, then
        // per block lif_a, lif_b.
        let mut membranes = vec![self.stem_lif.take_state_tensor()];
        for b in &mut self.blocks {
            membranes.push(b.lif_a.take_state_tensor());
            membranes.push(b.lif_b.take_state_tensor());
        }
        InferState::from_membranes(membranes)
    }

    fn restore_infer_state(&mut self, state: InferState) -> Result<(), ShapeError> {
        let expected = 1 + 2 * self.blocks.len();
        if state.layers() != expected {
            return Err(ShapeError::new(format!(
                "ResNetSnn::restore_infer_state: snapshot covers {} LIF layers, model has \
                 {expected}",
                state.layers()
            )));
        }
        let mut membranes = state.into_membranes().into_iter();
        self.stem_lif.restore_state_tensor(membranes.next().unwrap());
        for b in &mut self.blocks {
            b.lif_a.restore_state_tensor(membranes.next().unwrap());
            b.lif_b.restore_state_tensor(membranes.next().unwrap());
        }
        Ok(())
    }
}

impl SpikingModel for ResNetSnn {
    fn params(&self) -> Vec<Var> {
        let mut p = self.stem.params();
        p.extend(self.stem_norm.params());
        for b in &self.blocks {
            p.extend(b.conv_a.params());
            p.extend(b.norm_a.params());
            p.extend(b.conv_b.params());
            p.extend(b.norm_b.params());
            if let Some((conv, norm)) = &b.shortcut {
                p.extend(conv.params());
                p.extend(norm.params());
            }
        }
        // Once the classifier is frozen to int8 its float weights are no
        // longer parameters (only the norm layers stay float).
        if self.qfc.is_none() {
            p.push(self.fc_w.clone());
            p.push(self.fc_b.clone());
        }
        p
    }

    fn reset_state(&mut self) {
        self.stem_lif.reset();
        for b in &mut self.blocks {
            b.lif_a.reset();
            b.lif_b.reset();
        }
    }

    fn name(&self) -> String {
        format!("{} [{}]", self.config.name, self.policy_name)
    }

    fn macs_at(&self, t: usize) -> usize {
        let mut total = self.stem.macs(self.config.in_hw, t);
        for b in &self.blocks {
            total += b.conv_a.macs(b.in_hw, t);
            total += b.conv_b.macs(b.out_hw, t);
            if let Some((conv, _)) = &b.shortcut {
                total += conv.macs(b.in_hw, t);
            }
        }
        total + self.fc_w.value().len()
    }

    fn mean_spike_activity(&self) -> Option<f64> {
        let mut spikes = 0.0f64;
        let mut steps = 0.0f64;
        let mut record = |lif: &Lif| {
            let (s, n) = lif.activity_counts();
            spikes += s;
            steps += n;
        };
        record(&self.stem_lif);
        for b in &self.blocks {
            record(&b.lif_a);
            record(&b.lif_b);
        }
        if steps > 0.0 {
            Some(spikes / steps)
        } else {
            None
        }
    }

    fn layer_spike_densities(&self) -> Vec<f64> {
        let mut out = vec![self.stem_lif.activity().unwrap_or(0.0)];
        for b in &self.blocks {
            out.push(b.lif_a.activity().unwrap_or(0.0));
            out.push(b.lif_b.activity().unwrap_or(0.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttsnn_core::TtMode;

    fn tiny_cfg() -> ResNetConfig {
        ResNetConfig::resnet18(5, (8, 8), 16) // widths 4,8,16,32
    }

    #[test]
    fn forward_shapes_baseline_and_tt() {
        let mut rng = Rng::seed_from(1);
        let x = Var::constant(Tensor::randn(&[2, 3, 8, 8], &mut rng));
        for policy in [
            ConvPolicy::Baseline,
            ConvPolicy::tt(TtMode::Stt),
            ConvPolicy::tt(TtMode::Ptt),
            ConvPolicy::tt(TtMode::htt_default(2)),
        ] {
            let mut net = ResNetSnn::new(tiny_cfg(), &policy, &mut rng);
            for t in 0..2 {
                let y = net.forward_timestep(&x, t).unwrap();
                assert_eq!(y.shape(), vec![2, 5], "policy {}", policy.name());
            }
            net.reset_state();
        }
    }

    #[test]
    fn resnet18_has_8_blocks_16_decomposable_convs() {
        let mut rng = Rng::seed_from(2);
        let net = ResNetSnn::new(tiny_cfg(), &ConvPolicy::tt(TtMode::Ptt), &mut rng);
        assert_eq!(net.num_blocks(), 8);
        assert_eq!(net.tt_layers().len(), 16);
    }

    #[test]
    fn resnet20_topology() {
        let mut rng = Rng::seed_from(3);
        let cfg = ResNetConfig::resnet20(10, (8, 8), 4);
        let net = ResNetSnn::new(cfg, &ConvPolicy::Baseline, &mut rng);
        assert_eq!(net.num_blocks(), 9);
        assert!(net.tt_layers().is_empty());
    }

    #[test]
    fn resnet34_topology() {
        let mut rng = Rng::seed_from(4);
        let cfg = ResNetConfig::resnet34_events(11, (16, 16), 16);
        let net = ResNetSnn::new(cfg, &ConvPolicy::tt(TtMode::Stt), &mut rng);
        assert_eq!(net.num_blocks(), 16);
        assert_eq!(net.tt_layers().len(), 32);
    }

    #[test]
    fn tt_reduces_params_and_macs() {
        let mut rng = Rng::seed_from(5);
        let base = ResNetSnn::new(tiny_cfg(), &ConvPolicy::Baseline, &mut rng);
        let tt = ResNetSnn::new(tiny_cfg(), &ConvPolicy::tt(TtMode::Ptt), &mut rng);
        assert!(tt.num_params() < base.num_params());
        assert!(tt.macs_at(0) < base.macs_at(0));
    }

    #[test]
    fn htt_macs_drop_at_half_timesteps() {
        let mut rng = Rng::seed_from(6);
        let net = ResNetSnn::new(tiny_cfg(), &ConvPolicy::tt(TtMode::htt_default(4)), &mut rng);
        assert!(net.macs_at(3) < net.macs_at(0));
    }

    #[test]
    fn gradient_reaches_stem_through_full_depth() {
        let mut rng = Rng::seed_from(7);
        let mut net = ResNetSnn::new(tiny_cfg(), &ConvPolicy::tt(TtMode::Ptt), &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng));
        let mut logits = net.forward_timestep(&x, 0).unwrap();
        for t in 1..2 {
            logits = logits.add(&net.forward_timestep(&x, t).unwrap()).unwrap();
        }
        let loss = ttsnn_autograd::ops::cross_entropy_logits(&logits, &[1]).unwrap();
        loss.backward();
        let stem_grad = net.stem.params()[0].grad();
        assert!(stem_grad.is_some(), "stem must receive gradient through 18 layers + BPTT");
    }

    #[test]
    fn reset_state_allows_new_batch_size() {
        let mut rng = Rng::seed_from(8);
        let mut net = ResNetSnn::new(tiny_cfg(), &ConvPolicy::Baseline, &mut rng);
        let x2 = Var::constant(Tensor::randn(&[2, 3, 8, 8], &mut rng));
        net.forward_timestep(&x2, 0).unwrap();
        let x3 = Var::constant(Tensor::randn(&[3, 3, 8, 8], &mut rng));
        assert!(net.forward_timestep(&x3, 1).is_err(), "stale membrane must be detected");
        net.reset_state();
        assert!(net.forward_timestep(&x3, 0).is_ok());
    }

    #[test]
    fn name_includes_policy() {
        let mut rng = Rng::seed_from(9);
        let net = ResNetSnn::new(tiny_cfg(), &ConvPolicy::tt(TtMode::Ptt), &mut rng);
        assert_eq!(net.name(), "MS-ResNet18 [PTT]");
    }

    #[test]
    fn merge_into_dense_preserves_ptt_outputs() {
        let mut rng = Rng::seed_from(10);
        let mut net = ResNetSnn::new(tiny_cfg(), &ConvPolicy::tt(TtMode::Ptt), &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng));
        let before = net.forward_timestep(&x, 0).unwrap().to_tensor();
        net.reset_state();
        let merged = net.merge_into_dense().unwrap();
        assert_eq!(merged, 16);
        assert!(net.tt_layers().is_empty());
        let after = net.forward_timestep(&x, 0).unwrap().to_tensor();
        assert!(
            before.max_abs_diff(&after).unwrap() < 1e-2,
            "merged dense network must reproduce the TT network"
        );
        assert_eq!(net.name(), "MS-ResNet18 [merged-dense]");
    }

    #[test]
    fn merge_into_dense_is_noop_for_baseline() {
        let mut rng = Rng::seed_from(11);
        let mut net = ResNetSnn::new(tiny_cfg(), &ConvPolicy::Baseline, &mut rng);
        assert_eq!(net.merge_into_dense().unwrap(), 0);
        assert_eq!(net.name(), "MS-ResNet18 [baseline]");
    }

    #[test]
    fn merged_network_has_dense_param_count() {
        let mut rng = Rng::seed_from(12);
        let mut tt_net = ResNetSnn::new(tiny_cfg(), &ConvPolicy::tt(TtMode::Ptt), &mut rng);
        let base_net = ResNetSnn::new(tiny_cfg(), &ConvPolicy::Baseline, &mut rng);
        tt_net.merge_into_dense().unwrap();
        assert_eq!(tt_net.num_params(), base_net.num_params());
    }
}
