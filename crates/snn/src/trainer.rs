//! The BPTT training loop (Algorithm 1, lines 6–19) with wall-clock
//! training-time measurement.
//!
//! "Training time" in Table II is *the time taken for forward and backward
//! passes on a single batch*; [`train`] therefore times every optimization
//! step and reports the mean per-batch seconds alongside loss/accuracy
//! curves.
//!
//! # Threading
//!
//! The loop itself is single-threaded per model (the autograd graph is
//! `Rc`-based by design), but every conv/matmul it executes — forward over
//! all timesteps and the whole BPTT backward sweep — is batch- and
//! row-parallel through [`ttsnn_tensor::runtime`]. Thread count comes from
//! the machine (override with `TTSNN_NUM_THREADS`); [`TrainReport::threads`]
//! records what a run actually used so timing numbers are comparable.

use std::time::Instant;

use ttsnn_tensor::runtime::Runtime;

use ttsnn_autograd::{CosineAnnealing, Sgd, SgdConfig, Var};
use ttsnn_data::Batch;
use ttsnn_tensor::{ShapeError, Tensor};

use crate::loss::LossKind;
use crate::model::{InferForward, InferStats, Model, TrainForward};

/// Hyper-parameters for a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Initial learning rate (cosine-annealed to 0, as in the paper).
    pub lr: f32,
    /// SGD momentum (paper: 0.9).
    pub momentum: f32,
    /// Weight decay (paper: 1e-4).
    pub weight_decay: f32,
    /// Loss applied to the per-timestep logits.
    pub loss: LossKind,
}

impl Default for TrainConfig {
    /// Paper hyper-parameters scaled to short synthetic runs: lr 0.1,
    /// momentum 0.9, weight decay 1e-4, sum-CE loss, 8 epochs.
    fn default() -> Self {
        Self { epochs: 8, lr: 0.1, momentum: 0.9, weight_decay: 1e-4, loss: LossKind::SumCe }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy over the epoch's batches.
    pub accuracy: f32,
    /// Mean seconds per optimization step (forward + backward + update).
    pub step_seconds: f64,
}

/// Result of a full training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Per-epoch statistics in order.
    pub epochs: Vec<EpochStats>,
    /// Accuracy on the held-out batches after the final epoch.
    pub test_accuracy: f32,
    /// Mean seconds per optimization step across all epochs — the
    /// "training time" column of Table II.
    pub mean_step_seconds: f64,
    /// Worker threads the kernel runtime used for this run.
    pub threads: usize,
    /// Data-parallel model replicas the run used (1 for [`train`]; the
    /// shard count for [`crate::ShardedTrainer::train`]).
    pub shards: usize,
}

impl TrainReport {
    /// Final training loss.
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.loss).unwrap_or(f32::NAN)
    }

    /// First-epoch training loss (for "loss decreased" assertions).
    pub fn first_loss(&self) -> f32 {
        self.epochs.first().map(|e| e.loss).unwrap_or(f32::NAN)
    }
}

/// Runs the forward pass over all timesteps of one batch, returning the
/// per-timestep logits. Resets model state first.
///
/// # Errors
///
/// Returns [`ShapeError`] if the batch does not match the model.
pub fn forward_batch(model: &mut dyn TrainForward, batch: &Batch) -> Result<Vec<Var>, ShapeError> {
    model.reset_state();
    let mut logits = Vec::with_capacity(batch.timesteps());
    for (t, frame) in batch.frames.iter().enumerate() {
        let x = Var::constant(frame.clone());
        logits.push(model.forward_timestep(&x, t)?);
    }
    Ok(logits)
}

/// One timed optimization step: forward over all timesteps, loss, BPTT
/// backward, SGD update. Returns `(loss, seconds)`.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes are inconsistent.
pub fn train_step(
    model: &mut dyn TrainForward,
    batch: &Batch,
    opt: &mut Sgd,
    loss_kind: LossKind,
) -> Result<(f32, f64), ShapeError> {
    let start = Instant::now();
    opt.zero_grad();
    let logits = forward_batch(model, batch)?;
    let loss = loss_kind.compute(&logits, &batch.labels)?;
    let loss_value = loss.to_tensor().data()[0];
    loss.backward();
    opt.step();
    Ok((loss_value, start.elapsed().as_secs_f64()))
}

/// Accuracy of summed-logit predictions over batches, computed on the
/// **inference plane** ([`InferForward`]) — graph-free.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes are inconsistent.
pub fn evaluate(model: &mut dyn InferForward, batches: &[Batch]) -> Result<f32, ShapeError> {
    let (correct, total) = evaluate_counts(model, batches)?;
    Ok(if total == 0 { 0.0 } else { correct as f32 / total as f32 })
}

/// Raw `(correct, total)` prediction counts behind [`evaluate`]. The
/// data-parallel trainer evaluates disjoint batch subsets on each replica
/// and sums these integer counts — an order-free reduction, so sharded
/// evaluation is trivially deterministic.
///
/// Runs entirely on the inference plane: **zero autograd nodes** are
/// allocated (asserted by `crates/snn/tests/infer_parity.rs` via
/// `ttsnn_autograd::nodes_created`). The model is pinned to
/// [`crate::InferStats::Batch`] for the duration of the call (and
/// restored afterwards), so the per-timestep logits are bit-identical to
/// the `Var` plane's and reported accuracies match the old tape-building
/// implementation exactly — even for a model that was switched to
/// serving (`PerSample`) mode in between.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes are inconsistent or a batch has no
/// timesteps.
pub fn evaluate_counts(
    model: &mut dyn InferForward,
    batches: &[Batch],
) -> Result<(usize, usize), ShapeError> {
    let saved_stats = model.infer_stats();
    model.set_infer_stats(InferStats::Batch);
    let result = evaluate_counts_inner(model, batches);
    model.set_infer_stats(saved_stats);
    result
}

fn evaluate_counts_inner(
    model: &mut dyn InferForward,
    batches: &[Batch],
) -> Result<(usize, usize), ShapeError> {
    let mut correct = 0usize;
    let mut total = 0usize;
    for batch in batches {
        model.reset_state();
        let mut preds: Option<Tensor> = None;
        for (t, frame) in batch.frames.iter().enumerate() {
            let logits = model.forward_timestep_tensor(frame, t)?;
            match preds.as_mut() {
                Some(p) => p.add_scaled(&logits, 1.0)?,
                None => preds = Some(logits),
            }
        }
        let preds =
            preds.ok_or_else(|| ShapeError::new("evaluate_counts: batch has no timesteps"))?;
        let k = preds.shape()[1];
        for (i, &label) in batch.labels.iter().enumerate() {
            let row = &preds.data()[i * k..(i + 1) * k];
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if argmax == label {
                correct += 1;
            }
            total += 1;
        }
    }
    Ok((correct, total))
}

/// Trains a model with SGD + cosine annealing (Algorithm 1, lines 6–19) and
/// reports loss/accuracy curves plus mean per-step wall-clock time.
///
/// Takes a [`Model`] — both execution planes — because optimization steps
/// run on the training plane while the per-epoch accuracy evaluation runs
/// graph-free on the inference plane.
///
/// # Errors
///
/// Returns [`ShapeError`] if any batch does not match the model.
pub fn train(
    model: &mut dyn Model,
    train_batches: &[Batch],
    test_batches: &[Batch],
    cfg: &TrainConfig,
) -> Result<TrainReport, ShapeError> {
    let mut opt = Sgd::new(
        model.params(),
        SgdConfig { lr: cfg.lr, momentum: cfg.momentum, weight_decay: cfg.weight_decay },
    );
    let sched = CosineAnnealing::new(cfg.lr, cfg.epochs);
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut total_time = 0.0f64;
    let mut total_steps = 0usize;
    for epoch in 0..cfg.epochs {
        sched.apply(&mut opt, epoch);
        let mut loss_sum = 0.0f32;
        let mut time_sum = 0.0f64;
        for batch in train_batches {
            let (loss, secs) = train_step(&mut *model, batch, &mut opt, cfg.loss)?;
            loss_sum += loss;
            time_sum += secs;
        }
        let accuracy = evaluate(&mut *model, train_batches)?;
        let n = train_batches.len().max(1);
        epochs.push(EpochStats {
            loss: loss_sum / n as f32,
            accuracy,
            step_seconds: time_sum / n as f64,
        });
        total_time += time_sum;
        total_steps += train_batches.len();
    }
    let test_accuracy = evaluate(&mut *model, test_batches)?;
    Ok(TrainReport {
        epochs,
        test_accuracy,
        mean_step_seconds: if total_steps > 0 { total_time / total_steps as f64 } else { 0.0 },
        threads: Runtime::global().threads(),
        shards: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_unit::ConvPolicy;
    use crate::resnet::{ResNetConfig, ResNetSnn};
    use ttsnn_core::TtMode;
    use ttsnn_data::StaticImages;
    use ttsnn_tensor::Rng;

    fn tiny_setup(policy: &ConvPolicy, seed: u64) -> (ResNetSnn, Vec<Batch>, Vec<Batch>) {
        let mut rng = Rng::seed_from(seed);
        let gen = StaticImages::new(3, 8, 8, 4, 0.15, 99);
        let ds = gen.dataset(48, &mut rng);
        let (train_ds, test_ds) = ds.split(0.75, &mut rng);
        let train = train_ds.batches(12, 2, &mut rng).unwrap();
        let test = test_ds.batches(12, 2, &mut rng).unwrap();
        let cfg = ResNetConfig::resnet18(4, (8, 8), 16);
        let net = ResNetSnn::new(cfg, policy, &mut rng);
        (net, train, test)
    }

    #[test]
    fn loss_decreases_baseline() {
        let (mut net, train_b, test_b) = tiny_setup(&ConvPolicy::Baseline, 1);
        let cfg = TrainConfig { epochs: 4, lr: 0.05, ..TrainConfig::default() };
        let report = train(&mut net, &train_b, &test_b, &cfg).unwrap();
        assert!(
            report.final_loss() < report.first_loss(),
            "loss should fall: {} -> {}",
            report.first_loss(),
            report.final_loss()
        );
        assert!(report.mean_step_seconds > 0.0);
    }

    #[test]
    fn loss_decreases_ptt() {
        let (mut net, train_b, test_b) = tiny_setup(&ConvPolicy::tt(TtMode::Ptt), 2);
        let cfg = TrainConfig { epochs: 4, lr: 0.05, ..TrainConfig::default() };
        let report = train(&mut net, &train_b, &test_b, &cfg).unwrap();
        assert!(report.final_loss() < report.first_loss());
    }

    #[test]
    fn training_beats_chance_on_separable_data() {
        let (mut net, train_b, test_b) = tiny_setup(&ConvPolicy::Baseline, 3);
        let cfg = TrainConfig { epochs: 6, lr: 0.05, ..TrainConfig::default() };
        let report = train(&mut net, &train_b, &test_b, &cfg).unwrap();
        let final_train_acc = report.epochs.last().unwrap().accuracy;
        assert!(
            final_train_acc > 0.4,
            "4-class train accuracy {final_train_acc} should beat chance 0.25"
        );
    }

    #[test]
    fn tet_loss_trains() {
        let (mut net, train_b, test_b) = tiny_setup(&ConvPolicy::Baseline, 4);
        let cfg =
            TrainConfig { epochs: 3, lr: 0.05, loss: LossKind::Tet, ..TrainConfig::default() };
        let report = train(&mut net, &train_b, &test_b, &cfg).unwrap();
        assert!(report.final_loss() < report.first_loss());
    }

    #[test]
    fn evaluate_is_deterministic() {
        let (mut net, train_b, _) = tiny_setup(&ConvPolicy::Baseline, 5);
        let a = evaluate(&mut net, &train_b).unwrap();
        let b = evaluate(&mut net, &train_b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn forward_batch_returns_one_logit_per_timestep() {
        let (mut net, train_b, _) = tiny_setup(&ConvPolicy::tt(TtMode::htt_default(2)), 6);
        let logits = forward_batch(&mut net, &train_b[0]).unwrap();
        assert_eq!(logits.len(), 2);
        assert_eq!(logits[0].shape(), vec![12, 4]);
    }
}
