//! Inference-plane throughput: graph-free evaluation vs the old
//! tape-building `Var` path, plus end-to-end engine serving.
//!
//! Criterion-free. Three experiments, recorded into
//! `BENCH_infer_throughput.json` in the working directory:
//!
//! 1. **`var_plane`** — samples/second of evaluation through
//!    `TrainForward` (a full autograd tape built and thrown away per
//!    batch — what `evaluate` did before the API split).
//! 2. **`tensor_plane`** — samples/second of `evaluate_counts` on
//!    `InferForward` (zero autograd nodes, arena-backed intermediates).
//! 3. **`engine_serving`** — requests/second through a `ttsnn_infer`
//!    [`Session`] with dynamic micro-batching (per-sample determinism
//!    contract) on the same checkpoint.
//!
//! ```sh
//! cargo run -p ttsnn-bench --release --bin infer_throughput
//! ```

use std::time::{Duration, Instant};

use ttsnn_autograd::Var;
use ttsnn_bench::harness::micro::{write_json, BenchRecord};
use ttsnn_core::TtMode;
use ttsnn_data::{Batch, StaticImages};
use ttsnn_infer::{ArchSpec, BatchPolicy, Engine, EngineConfig, Session};
use ttsnn_snn::trainer::evaluate_counts;
use ttsnn_snn::{checkpoint, ConvPolicy, Model, SpikingModel, VggConfig, VggSnn};
use ttsnn_tensor::runtime::Runtime;
use ttsnn_tensor::{Rng, Tensor};

const TIMESTEPS: usize = 4;
const BATCH: usize = 16;
const ITERS: usize = 3;

fn vgg_cfg() -> VggConfig {
    VggConfig::vgg9(3, 10, (16, 16), 8)
}

fn model() -> VggSnn {
    let mut rng = Rng::seed_from(42);
    VggSnn::new(vgg_cfg(), &ConvPolicy::tt(TtMode::Ptt), &mut rng)
}

fn data() -> Vec<Batch> {
    let mut rng = Rng::seed_from(1);
    StaticImages::new(3, 16, 16, 10, 0.15, 9)
        .dataset(BATCH * 2, &mut rng)
        .batches(BATCH, TIMESTEPS, &mut rng)
        .expect("bench batches")
}

/// The pre-split evaluation loop: Var-plane forward, tape built and
/// dropped. Kept here as the baseline the tensor plane is measured
/// against.
fn var_plane_counts(model: &mut dyn Model, batches: &[Batch]) -> (usize, usize) {
    let mut correct = 0usize;
    let mut total = 0usize;
    for batch in batches {
        model.reset_state();
        let mut preds: Option<Tensor> = None;
        for (t, frame) in batch.frames.iter().enumerate() {
            let logits =
                model.forward_timestep(&Var::constant(frame.clone()), t).expect("var forward");
            match preds.as_mut() {
                Some(p) => p.add_scaled(&logits.value(), 1.0).expect("logit sum"),
                None => preds = Some(logits.to_tensor()),
            }
        }
        let preds = preds.expect("timesteps");
        let k = preds.shape()[1];
        for (i, &label) in batch.labels.iter().enumerate() {
            let row = &preds.data()[i * k..(i + 1) * k];
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if argmax == label {
                correct += 1;
            }
            total += 1;
        }
    }
    (correct, total)
}

fn samples_per_sec(total_samples: usize, mut run: impl FnMut()) -> f64 {
    run(); // warmup
    let start = Instant::now();
    for _ in 0..ITERS {
        run();
    }
    (ITERS * total_samples) as f64 / start.elapsed().as_secs_f64()
}

fn engine_requests_per_sec(session: &Session, inputs: &[Tensor]) -> f64 {
    // Warmup.
    session.infer(inputs[0].clone()).expect("warmup request");
    let start = Instant::now();
    for _ in 0..ITERS {
        let tickets: Vec<_> = inputs.iter().map(|x| session.submit(x.clone())).collect();
        for t in tickets {
            t.wait().expect("bench request");
        }
    }
    (ITERS * inputs.len()) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let threads = Runtime::global().threads();
    println!("infer_throughput: {threads} kernel thread(s), VGG9 [PTT], T={TIMESTEPS}\n");
    let batches = data();
    let total: usize = batches.iter().map(Batch::len).sum();

    let mut net = model();
    let (var_correct, _) = var_plane_counts(&mut net, &batches); // sanity + warm arenas
    let var_sps = samples_per_sec(total, || {
        var_plane_counts(&mut net, &batches);
    });
    let tensor_sps = samples_per_sec(total, || {
        evaluate_counts(&mut net, &batches).expect("tensor-plane eval");
    });
    let (tensor_correct, _) = evaluate_counts(&mut net, &batches).expect("tensor-plane eval");
    assert_eq!(
        var_correct, tensor_correct,
        "the two planes must agree (bit-identical logits in Batch mode)"
    );
    println!("{:<28} {:>12.2} samples/s", "Var plane (tape built)", var_sps);
    println!("{:<28} {:>12.2} samples/s", "tensor plane (graph-free)", tensor_sps);
    println!("{:<28} {:>12.2}x", "speedup", tensor_sps / var_sps);

    // Engine serving on the same weights.
    let mut ckpt = Vec::new();
    checkpoint::save_params(&net.params(), &mut ckpt).expect("serialize checkpoint");
    let engine = Engine::load(
        EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::tt(TtMode::Ptt), TIMESTEPS)
            .with_batching(BatchPolicy { max_batch: 8, max_wait: Duration::from_millis(1) }),
        ckpt.as_slice(),
    )
    .expect("engine load");
    let mut rng = Rng::seed_from(7);
    let inputs: Vec<Tensor> =
        (0..BATCH).map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng)).collect();
    let engine_rps = engine_requests_per_sec(&engine.session(), &inputs);
    println!("{:<28} {:>12.2} requests/s ({})", "engine serving", engine_rps, engine.info().model);

    let records = vec![
        BenchRecord {
            name: "var_plane".into(),
            metrics: vec![
                ("samples_per_sec".into(), var_sps),
                ("batch".into(), BATCH as f64),
                ("timesteps".into(), TIMESTEPS as f64),
                ("threads".into(), threads as f64),
            ],
        },
        BenchRecord {
            name: "tensor_plane".into(),
            metrics: vec![
                ("samples_per_sec".into(), tensor_sps),
                ("speedup_vs_var_plane".into(), tensor_sps / var_sps),
            ],
        },
        BenchRecord {
            name: "engine_serving".into(),
            metrics: vec![
                ("requests_per_sec".into(), engine_rps),
                ("max_batch".into(), 8.0),
                ("max_wait_ms".into(), 1.0),
            ],
        },
    ];
    let path = "BENCH_infer_throughput.json";
    write_json(path, &records).expect("write bench json");
    println!("\nwrote {path}");
}
