//! In-process time-series history: fixed-capacity ring windows behind
//! the telemetry sampler, with Prometheus-style rate derivation and
//! windowed quantiles.
//!
//! The serving plane's `/metrics` page is a point-in-time snapshot; this
//! module is what turns those snapshots into *history* without any
//! external scraper. A background sampler (in `ttsnn_serve::telemetry`)
//! calls [`SeriesStore::record`] once per tick per series; each series
//! is an overwrite-oldest ring of `(timestamp, value)` samples, so the
//! whole store is bounded at `slots × MAX_SERIES` samples no matter how
//! long the process runs.
//!
//! Rate math follows Prometheus `increase()` semantics: a sample lower
//! than its predecessor marks a **counter reset** (restart), and the
//! post-reset value counts as the increase since the reset — history is
//! never negative and never double-counted.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Upper bound on distinct series names a [`SeriesStore`] tracks.
/// Records against new names beyond the cap are dropped (existing
/// series keep updating), so a misbehaving caller cannot grow the store
/// without bound. Generous: a plan contributes ~15 series and stage
/// histograms ~12 more.
pub const MAX_SERIES: usize = 512;

/// Ring geometry for the telemetry plane, env-tunable. Resolution is
/// the sampler tick period; `slots` is the per-series ring capacity, so
/// `resolution × slots` is the retained span (defaults: 5 s × 512 ≈
/// 42.7 min).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sampler tick period (ring slot width).
    pub resolution: Duration,
    /// Per-series ring capacity, in samples.
    pub slots: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { resolution: Duration::from_secs(5), slots: 512 }
    }
}

impl TelemetryConfig {
    /// Reads `TTSNN_TELEMETRY_RESOLUTION_MS` (default 5000, clamped to
    /// `[10, 600_000]`) and `TTSNN_TELEMETRY_SLOTS` (default 512,
    /// clamped to `[16, 65_536]`). Read at call time, not cached, so
    /// tests and embedders can reconfigure per instance.
    pub fn from_env() -> Self {
        let ms = std::env::var("TTSNN_TELEMETRY_RESOLUTION_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map_or(5000, |n| n.clamp(10, 600_000));
        let slots = std::env::var("TTSNN_TELEMETRY_SLOTS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(512, |n| n.clamp(16, 65_536));
        TelemetryConfig { resolution: Duration::from_millis(ms), slots }
    }

    /// The span of history one full ring covers.
    pub fn span(&self) -> Duration {
        self.resolution.saturating_mul(self.slots as u32)
    }
}

/// How a series' samples combine over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic cumulative count; reads derive increases and rates
    /// (counter-reset aware).
    Counter,
    /// Instantaneous level; reads derive min/max/mean/quantiles.
    Gauge,
}

/// One `(timestamp, value)` observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Nanoseconds since the trace epoch ([`crate::now_ns`]).
    pub at_ns: u64,
    /// Observed value.
    pub value: f64,
}

/// A fixed-capacity overwrite-oldest sample ring.
#[derive(Debug)]
struct Series {
    kind: SeriesKind,
    buf: Vec<Sample>,
    head: usize,
    capacity: usize,
}

impl Series {
    fn new(kind: SeriesKind, capacity: usize) -> Self {
        Series { kind, buf: Vec::new(), head: 0, capacity: capacity.max(1) }
    }

    fn push(&mut self, s: Sample) {
        if self.buf.len() < self.capacity {
            self.buf.push(s);
        } else {
            self.buf[self.head] = s;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Samples oldest → newest.
    fn ordered(&self) -> Vec<Sample> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }
}

/// A read-side copy of one series: kind plus samples oldest → newest.
/// All derived statistics (increase, rate, quantiles) are computed on
/// this snapshot so readers never hold the store lock while crunching.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Counter or gauge.
    pub kind: SeriesKind,
    /// Samples oldest → newest.
    pub samples: Vec<Sample>,
}

impl SeriesSnapshot {
    /// The newest sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Samples with `at_ns` in `[now_ns - window, now_ns]`: the index
    /// range into `self.samples`.
    fn window_range(&self, window: Duration, now_ns: u64) -> (usize, usize) {
        let start = now_ns.saturating_sub(window.as_nanos() as u64);
        let lo = self.samples.partition_point(|s| s.at_ns < start);
        (lo, self.samples.len())
    }

    /// The sample range a counter read uses: the in-window samples
    /// when at least two fall inside, else the single in-window sample
    /// with the sample just before the window as baseline (sparse
    /// rings), else `None`.
    fn counter_range(&self, window: Duration, now_ns: u64) -> Option<(usize, usize)> {
        let (lo, hi) = self.window_range(window, now_ns);
        match hi - lo {
            0 => None,
            1 if lo == 0 => None,
            1 => Some((lo - 1, hi)),
            _ => Some((lo, hi)),
        }
    }

    /// Counter increase over the trailing `window` ending at `now_ns`,
    /// Prometheus-style: consecutive deltas are summed, and a negative
    /// delta is treated as a counter reset (the new value *is* the
    /// increase since the reset). `None` when the window holds no
    /// samples (or a single sample with no earlier baseline).
    pub fn increase(&self, window: Duration, now_ns: u64) -> Option<f64> {
        let (lo, hi) = self.counter_range(window, now_ns)?;
        let mut total = 0.0;
        for pair in self.samples[lo..hi].windows(2) {
            let (prev, next) = (pair[0].value, pair[1].value);
            total += if next >= prev { next - prev } else { next };
        }
        Some(total)
    }

    /// Per-second rate over the trailing `window`: [`Self::increase`]
    /// divided by the *observed* span between the first and last sample
    /// used (not the nominal window), so sparse rings don't
    /// underestimate. `None` when the increase is undefined or the
    /// observed span is zero.
    pub fn rate_per_sec(&self, window: Duration, now_ns: u64) -> Option<f64> {
        let inc = self.increase(window, now_ns)?;
        let (lo, hi) = self.counter_range(window, now_ns)?;
        let w = &self.samples[lo..hi];
        let span_ns = w.last()?.at_ns.saturating_sub(w.first()?.at_ns);
        if span_ns == 0 {
            return None;
        }
        Some(inc / (span_ns as f64 / 1e9))
    }

    /// Exact quantile (nearest-rank on a sorted copy) of the gauge
    /// values in the trailing `window`. `q` is clamped to `[0, 1]`.
    /// `None` when the window holds no samples.
    pub fn quantile(&self, q: f64, window: Duration, now_ns: u64) -> Option<f64> {
        let (lo, hi) = self.window_range(window, now_ns);
        let mut vals: Vec<f64> =
            self.samples[lo..hi].iter().map(|s| s.value).filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
        Some(vals[rank - 1])
    }

    /// `(min, max, mean)` of the values in the trailing `window`, or
    /// `None` when empty.
    pub fn min_max_mean(&self, window: Duration, now_ns: u64) -> Option<(f64, f64, f64)> {
        let (lo, hi) = self.window_range(window, now_ns);
        let w = &self.samples[lo..hi];
        if w.is_empty() {
            return None;
        }
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for s in w {
            min = min.min(s.value);
            max = max.max(s.value);
            sum += s.value;
        }
        Some((min, max, sum / w.len() as f64))
    }
}

/// A bounded, named collection of series rings. One per telemetry
/// plane; writers ([`SeriesStore::record`]) and readers
/// ([`SeriesStore::snapshot`]) share a single mutex — fine for a
/// once-per-tick sampler and debug-endpoint readers.
#[derive(Debug)]
pub struct SeriesStore {
    slots: usize,
    series: Mutex<BTreeMap<String, Series>>,
}

impl SeriesStore {
    /// An empty store whose rings hold `config.slots` samples each.
    pub fn new(config: TelemetryConfig) -> Self {
        SeriesStore { slots: config.slots, series: Mutex::new(BTreeMap::new()) }
    }

    /// Records `value` for `name` at the current time ([`crate::now_ns`]).
    pub fn record(&self, name: &str, kind: SeriesKind, value: f64) {
        self.record_at(name, kind, value, crate::now_ns());
    }

    /// Records with an explicit timestamp (tests and replays).
    pub fn record_at(&self, name: &str, kind: SeriesKind, value: f64, at_ns: u64) {
        let mut map = self.series.lock().unwrap_or_else(|p| p.into_inner());
        if !map.contains_key(name) {
            if map.len() >= MAX_SERIES {
                return;
            }
            map.insert(name.to_string(), Series::new(kind, self.slots));
        }
        let series = map.get_mut(name).expect("just inserted");
        series.push(Sample { at_ns, value });
    }

    /// Snapshot of one series, or `None` if untracked.
    pub fn snapshot(&self, name: &str) -> Option<SeriesSnapshot> {
        let map = self.series.lock().unwrap_or_else(|p| p.into_inner());
        map.get(name).map(|s| SeriesSnapshot { kind: s.kind, samples: s.ordered() })
    }

    /// All tracked series names (sorted) with their newest sample.
    pub fn names(&self) -> Vec<(String, SeriesKind, Option<Sample>)> {
        let map = self.series.lock().unwrap_or_else(|p| p.into_inner());
        map.iter().map(|(n, s)| (n.clone(), s.kind, s.ordered().last().copied())).collect()
    }

    /// Number of tracked series.
    pub fn len(&self) -> usize {
        self.series.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether no series are tracked yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(slots: usize) -> SeriesStore {
        SeriesStore::new(TelemetryConfig { resolution: Duration::from_secs(1), slots })
    }

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn ring_wraps_at_capacity_keeping_newest() {
        let st = store(8);
        for i in 0..20u64 {
            st.record_at("s", SeriesKind::Gauge, i as f64, i * SEC);
        }
        let snap = st.snapshot("s").unwrap();
        assert_eq!(snap.samples.len(), 8);
        // Oldest → newest, and only the last 8 survive.
        let vals: Vec<f64> = snap.samples.iter().map(|s| s.value).collect();
        assert_eq!(vals, (12..20).map(|v| v as f64).collect::<Vec<_>>());
        assert_eq!(snap.last().unwrap().value, 19.0);
    }

    #[test]
    fn increase_handles_counter_resets() {
        let st = store(16);
        // 0 → 10 → 25, restart, 3 → 9: increase = 25 + 3 + 6 = 34.
        for (i, v) in [0.0, 10.0, 25.0, 3.0, 9.0].into_iter().enumerate() {
            st.record_at("c", SeriesKind::Counter, v, i as u64 * SEC);
        }
        let snap = st.snapshot("c").unwrap();
        let inc = snap.increase(Duration::from_secs(100), 4 * SEC).unwrap();
        assert!((inc - 34.0).abs() < 1e-9, "increase {inc}");
        // Rate uses the observed 4 s span.
        let rate = snap.rate_per_sec(Duration::from_secs(100), 4 * SEC).unwrap();
        assert!((rate - 34.0 / 4.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn increase_window_keeps_one_baseline_sample() {
        let st = store(16);
        for (i, v) in [5.0, 7.0, 12.0].into_iter().enumerate() {
            st.record_at("c", SeriesKind::Counter, v, i as u64 * SEC);
        }
        let snap = st.snapshot("c").unwrap();
        // Window covers the last two samples: increase = 12 - 7.
        let inc = snap.increase(Duration::from_millis(1500), 2 * SEC).unwrap();
        assert!((inc - 5.0).abs() < 1e-9, "increase {inc}");
        // Window covering only the newest sample borrows the one just
        // before it as baseline (sparse-ring read): 12 - 7 again.
        let inc = snap.increase(Duration::from_millis(500), 2 * SEC).unwrap();
        assert!((inc - 5.0).abs() < 1e-9, "increase {inc}");
        // A window covering nothing yields None.
        assert!(snap.increase(Duration::from_secs(1), 100 * SEC).is_none());
    }

    #[test]
    fn quantile_matches_exact_oracle_on_synthetic_series() {
        let st = store(64);
        // A deterministic shuffled sequence (LCG) so sorting matters.
        let mut x: u64 = 12345;
        let mut raw = Vec::new();
        for i in 0..200u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 33) as f64;
            raw.push(v);
            st.record_at("g", SeriesKind::Gauge, v, i * SEC);
        }
        // Ring kept the last 64 only; oracle over the same tail.
        let tail = &raw[raw.len() - 64..];
        let snap = st.snapshot("g").unwrap();
        let now = 199 * SEC;
        let window = Duration::from_secs(10_000);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let mut sorted = tail.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let got = snap.quantile(q, window, now).unwrap();
            assert_eq!(got, oracle, "q={q}");
        }
        let (min, max, mean) = snap.min_max_mean(window, now).unwrap();
        let oracle_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert_eq!(min, tail.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(max, tail.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        assert!((mean - oracle_mean).abs() < 1e-6);
    }

    #[test]
    fn store_is_bounded_at_max_series() {
        let st = store(4);
        for i in 0..(MAX_SERIES + 10) {
            st.record_at(&format!("s{i}"), SeriesKind::Gauge, 1.0, 0);
        }
        assert_eq!(st.len(), MAX_SERIES);
        // Existing series keep recording even at the cap.
        st.record_at("s0", SeriesKind::Gauge, 2.0, SEC);
        assert_eq!(st.snapshot("s0").unwrap().last().unwrap().value, 2.0);
        // The overflow name was dropped, not tracked.
        assert!(st.snapshot(&format!("s{}", MAX_SERIES + 5)).is_none());
    }

    #[test]
    fn config_defaults_and_span() {
        let cfg = TelemetryConfig::default();
        assert_eq!(cfg.resolution, Duration::from_secs(5));
        assert_eq!(cfg.slots, 512);
        assert_eq!(cfg.span(), Duration::from_secs(5 * 512));
    }
}
