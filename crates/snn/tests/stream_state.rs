//! Inference-plane state snapshot/restore: the `ttsnn_snn` half of the
//! streaming-session contract.
//!
//! [`InferForward::take_infer_state`] moves the LIF membranes out of a
//! model and [`InferForward::restore_infer_state`] moves them back in —
//! no copies, no rounding — so an unrolling interrupted at any timestep
//! and resumed later is **bit-identical** to an uninterrupted one. These
//! tests pin that over VGG9 and ResNet20 under dense and TT policies,
//! plus the structural guarantees (taking leaves the model stateless,
//! wrong-architecture snapshots are rejected, byte accounting is real).

use proptest::prelude::*;
use ttsnn_core::TtMode;
use ttsnn_snn::{ConvPolicy, InferForward, InferState, Model, ResNetSnn, SpikingModel, VggSnn};
use ttsnn_tensor::Tensor;
use ttsnn_testutil::{assert_bits_eq, resnet20_tiny, samples, vgg9_tiny};

const TIMESTEPS: usize = 4;

/// The architectures × policies the streaming plane serves.
fn builds(seed: u64) -> Vec<(String, Box<dyn Model>)> {
    let mut rng = ttsnn_tensor::Rng::seed_from(seed);
    let mut out: Vec<(String, Box<dyn Model>)> = Vec::new();
    for policy in [ConvPolicy::Baseline, ConvPolicy::tt(TtMode::Ptt)] {
        let vgg = VggSnn::new(vgg9_tiny(), &policy, &mut rng);
        out.push((vgg.name(), Box::new(vgg)));
        let res = ResNetSnn::new(resnet20_tiny(5), &policy, &mut rng);
        out.push((res.name(), Box::new(res)));
    }
    out
}

/// B=1 frames, one per timestep.
fn frames(seed: u64) -> Vec<Tensor> {
    samples(seed ^ 0xBEEF, TIMESTEPS)
        .into_iter()
        .map(|f| {
            let mut shape = vec![1usize];
            shape.extend_from_slice(f.shape());
            Tensor::from_vec(f.data().to_vec(), &shape).unwrap()
        })
        .collect()
}

/// Runs `t0..t1` on the inference plane, summing logits into `sum`.
fn run_span(
    model: &mut dyn Model,
    frames: &[Tensor],
    t0: usize,
    t1: usize,
    sum: &mut Option<Tensor>,
) {
    for (t, frame) in frames.iter().enumerate().take(t1).skip(t0) {
        let logits = model.forward_timestep_tensor(frame, t).unwrap();
        match sum.as_mut() {
            Some(s) => s.add_scaled(&logits, 1.0).unwrap(),
            None => *sum = Some(logits),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The headline property: snapshot/restore at an arbitrary cut point
    /// resumes the unrolling bit-identically — per-timestep logits and
    /// the time-summed readout both match the uninterrupted run exactly.
    #[test]
    fn interrupted_unrolling_is_bit_identical(seed in 0u64..500, cut in 1usize..TIMESTEPS) {
        let input = frames(seed);
        for (name, mut model) in builds(seed) {
            // Uninterrupted reference.
            model.reset_state();
            let mut whole: Option<Tensor> = None;
            run_span(model.as_mut(), &input, 0, TIMESTEPS, &mut whole);

            // Interrupted at `cut`: move the state out, pretend the model
            // served something else, move it back, resume.
            model.reset_state();
            let mut resumed: Option<Tensor> = None;
            run_span(model.as_mut(), &input, 0, cut, &mut resumed);
            let snapshot = model.take_infer_state();
            assert!(snapshot.bytes() > 0, "{name}: membranes must be resident after a step");
            // The model is stateless now; run unrelated traffic over it.
            model.reset_state();
            let decoy = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0,
                &mut ttsnn_tensor::Rng::seed_from(seed ^ 0xD0));
            model.forward_timestep_tensor(&decoy, 0).unwrap();
            model.reset_state();
            model.restore_infer_state(snapshot).unwrap();
            run_span(model.as_mut(), &input, cut, TIMESTEPS, &mut resumed);

            assert_bits_eq(
                &whole.unwrap(),
                &resumed.unwrap(),
                &format!("{name}: resume at t={cut}"),
            );
        }
    }
}

/// Taking the state leaves the model stateless on the inference plane: a
/// second take is empty, and forwarding again behaves exactly like a
/// fresh reset.
#[test]
fn take_leaves_the_model_stateless() {
    let input = frames(17);
    for (name, mut model) in builds(17) {
        model.reset_state();
        run_span(model.as_mut(), &input, 0, 2, &mut None);
        let first = model.take_infer_state();
        assert!(first.layers() > 0 && first.bytes() > 0, "{name}");
        let second = model.take_infer_state();
        assert_eq!(second.bytes(), 0, "{name}: second take must find no membranes");

        // Post-take forward == fresh-reset forward, bit for bit.
        let mut after_take: Option<Tensor> = None;
        run_span(model.as_mut(), &input, 0, 1, &mut after_take);
        model.reset_state();
        let mut fresh: Option<Tensor> = None;
        run_span(model.as_mut(), &input, 0, 1, &mut fresh);
        assert_bits_eq(&after_take.unwrap(), &fresh.unwrap(), &format!("{name}: post-take"));
    }
}

/// A snapshot from a different architecture is rejected up front (layer
/// count mismatch), and the rejected model still serves correctly.
#[test]
fn restore_rejects_foreign_snapshots() {
    let mut rng = ttsnn_tensor::Rng::seed_from(23);
    let mut vgg = VggSnn::new(vgg9_tiny(), &ConvPolicy::Baseline, &mut rng);
    let mut res = ResNetSnn::new(resnet20_tiny(5), &ConvPolicy::Baseline, &mut rng);
    let input = frames(23);
    vgg.reset_state();
    run_span(&mut vgg, &input, 0, 1, &mut None);
    let vgg_state = vgg.take_infer_state();
    let err = res.restore_infer_state(vgg_state).unwrap_err();
    assert!(err.to_string().contains("layers"), "unclear error: {err}");
    // The ResNet is untouched: it still runs from reset.
    res.reset_state();
    let mut sum: Option<Tensor> = None;
    run_span(&mut res, &input, 0, TIMESTEPS, &mut sum);
    assert!(sum.unwrap().data().iter().all(|v| v.is_finite()));
}

/// Round-tripping a snapshot through its raw membranes preserves every
/// tensor (the `InferState` container adds nothing and loses nothing).
#[test]
fn snapshot_membranes_round_trip() {
    let input = frames(29);
    let (_, mut model) = ttsnn_testutil::vgg_checkpoint(&ConvPolicy::Baseline, 29);
    model.reset_state();
    run_span(&mut model, &input, 0, 2, &mut None);
    let snapshot = model.take_infer_state();
    let layers = snapshot.layers();
    let bytes = snapshot.bytes();
    let membranes = snapshot.into_membranes();
    assert_eq!(membranes.len(), layers);
    let rebuilt = InferState::from_membranes(membranes);
    assert_eq!(rebuilt.layers(), layers);
    assert_eq!(rebuilt.bytes(), bytes);
    model.restore_infer_state(rebuilt).unwrap();
    // And the restored model resumes: one more step runs clean.
    run_span(&mut model, &input, 2, 3, &mut None);
}
