//! Human- and tool-facing views of the flight recorder: Chrome
//! trace-event JSON for `GET /trace?id=` and the plain-text recent-
//! requests listing for `GET /debug/requests`.

use crate::{
    completions, service_events, slow_exemplars, slow_threshold_ms, Completion, Event, EventKind,
};

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends the span-specific `args` object. The `a`/`b` payload slots
/// are named per span so the JSON reads meaningfully in Perfetto.
fn push_args(out: &mut String, e: &Event) {
    out.push_str(",\"args\":{");
    match e.name {
        "timestep" => {
            out.push_str(&format!("\"t\":{},\"macs\":{}", e.a, e.b));
        }
        "execute" => {
            out.push_str(&format!("\"batch\":{},\"mean_spike_density\":", e.a));
            push_f64(out, f64::from_bits(e.b));
        }
        "queue_wait" => {
            out.push_str(&format!("\"priority\":{},\"tenant\":{}", e.a, e.b));
        }
        "batch_form" => {
            out.push_str(&format!("\"batch\":{}", e.a));
        }
        "rejected" => {
            out.push_str(&format!("\"reason\":\"{}\",\"tenant\":{}", reject_reason(e.a), e.b));
        }
        _ => {
            out.push_str(&format!("\"a\":{},\"b\":{}", e.a, e.b));
        }
    }
    out.push('}');
}

/// Rejection reason code carried in a `rejected` event's `a` payload.
pub fn reject_reason(code: u64) -> &'static str {
    match code {
        1 => "saturated",
        2 => "rate_limited",
        _ => "unknown",
    }
}

/// Renders one request's events as Chrome trace-event JSON (the
/// `traceEvents` array format), loadable in `chrome://tracing` or
/// Perfetto. Spans become complete (`ph:"X"`) events, instants become
/// `ph:"i"`; timestamps are microseconds since the trace epoch.
pub fn chrome_trace_json(trace: u64, events: &[Event]) -> String {
    let mut out = String::with_capacity(128 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"trace_id\":\"");
    out.push_str(&trace.to_string());
    out.push_str("\"},\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = e.start_ns as f64 / 1e3;
        match e.kind {
            EventKind::Span => {
                let dur = e.dur_ns as f64 / 1e3;
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur},\"pid\":1,\"tid\":1",
                    e.name
                ));
            }
            EventKind::Instant => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"i\",\"s\":\"g\",\
                     \"ts\":{ts},\"pid\":1,\"tid\":1",
                    e.name
                ));
            }
        }
        push_args(&mut out, e);
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

fn completion_line(out: &mut String, now_ns: u64, c: &Completion) {
    out.push_str(&format!(
        "  trace={} tenant={} status={} total={} age={:.1}s\n",
        c.trace,
        c.tenant,
        c.status,
        fmt_ms(c.total_ns),
        now_ns.saturating_sub(c.end_ns) as f64 / 1e9,
    ));
}

/// Renders the flight recorder as the `GET /debug/requests` text page:
/// recent completions (admission rejections included) newest first,
/// then the pinned slow exemplars.
pub fn debug_requests_text() -> String {
    let now = crate::now_ns();
    let recent = completions();
    let slow = slow_exemplars();
    let mut out = String::new();
    out.push_str(&format!(
        "recent requests ({} of last {}):\n",
        recent.len(),
        crate::RECENT_COMPLETIONS
    ));
    if recent.is_empty() {
        out.push_str("  (none)\n");
    }
    for c in &recent {
        completion_line(&mut out, now, c);
    }
    out.push_str(&format!(
        "slow exemplars (>= {}ms, {} pinned, cap {}):\n",
        slow_threshold_ms(),
        slow.len(),
        crate::SLOW_EXEMPLARS
    ));
    if slow.is_empty() {
        out.push_str("  (none)\n");
    }
    for c in &slow {
        completion_line(&mut out, now, c);
    }
    let service = service_events();
    out.push_str(&format!(
        "service events ({} of last {}):\n",
        service.len(),
        crate::SERVICE_EVENTS
    ));
    if service.is_empty() {
        out.push_str("  (none)\n");
    }
    for e in &service {
        out.push_str(&format!(
            "  [{}] {:.1}s ago {}: {}\n",
            e.severity.as_str(),
            now.saturating_sub(e.at_ns) as f64 / 1e9,
            e.scope,
            e.message,
        ));
    }
    out.push_str("fetch one trace as Chrome trace-event JSON: GET /trace?id=<trace>\n");
    out
}

/// Eight-level Unicode block sparkline of `values`, min-max normalized;
/// non-finite values render as spaces. The `GET /debug/timeline` view.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if max <= min {
                BLOCKS[0]
            } else {
                let norm = (v - min) / (max - min);
                BLOCKS[((norm * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_names_span_args() {
        let events = [
            Event {
                trace: 9,
                name: "timestep",
                kind: EventKind::Span,
                start_ns: 1_500,
                dur_ns: 2_000,
                a: 3,
                b: 4096,
            },
            Event {
                trace: 9,
                name: "rejected",
                kind: EventKind::Instant,
                start_ns: 9_000,
                dur_ns: 0,
                a: 1,
                b: 7,
            },
        ];
        let json = chrome_trace_json(9, &events);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"timestep\""));
        assert!(json.contains("\"t\":3,\"macs\":4096"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"reason\":\"saturated\",\"tenant\":7"));
        // Microsecond timestamps.
        assert!(json.contains("\"ts\":1.5"));
    }

    #[test]
    fn density_bits_render_as_number_or_null() {
        let mk = |b: u64| Event {
            trace: 1,
            name: "execute",
            kind: EventKind::Span,
            start_ns: 0,
            dur_ns: 1,
            a: 2,
            b,
        };
        let json = chrome_trace_json(1, &[mk(0.25f64.to_bits())]);
        assert!(json.contains("\"mean_spike_density\":0.25"));
        let json = chrome_trace_json(1, &[mk(f64::NAN.to_bits())]);
        assert!(json.contains("\"mean_spike_density\":null"));
    }

    #[test]
    fn debug_text_always_has_all_sections() {
        let text = debug_requests_text();
        assert!(text.contains("recent requests"));
        assert!(text.contains("slow exemplars"));
        assert!(text.contains("service events"));
    }

    #[test]
    fn sparkline_normalizes_and_survives_nan() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[3.0, 3.0]), "▁▁");
        let s = sparkline(&[0.0, 3.5, 7.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
        let s = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(s.chars().nth(1), Some(' '));
    }
}
