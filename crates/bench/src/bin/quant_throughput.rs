//! Quantized serving plane: int8 vs f32 frozen plans on the same
//! checkpoint.
//!
//! Criterion-free. Recorded into `BENCH_quant_infer.json` in the working
//! directory:
//!
//! 1. **`f32_plan`** — requests/second through a merged-dense f32
//!    [`Engine`] plus the plan's weight storage in bytes.
//! 2. **`int8_plan`** — requests/second through the same checkpoint
//!    frozen with [`Engine::load_quantized`] (calibrate → int8 freeze →
//!    serve on the i8×i8→i32 kernels), plus int8 weight storage and the
//!    measured logit drift/argmax agreement against the f32 plan.
//! 3. **`modeled_accel_energy`** — what one inference of each plan would
//!    cost on the paper's accelerator datapath
//!    (`ttsnn_accel::serving_energy`): the measured CPU speedup is a
//!    kernel artifact, the modeled energy is the Table I story.
//!
//! ```sh
//! cargo run -p ttsnn-bench --release --bin quant_throughput
//! ```

use std::time::{Duration, Instant};

use ttsnn_accel::{serving_energy, EnergyModel, ServingPrecision};
use ttsnn_bench::harness::micro::{write_json, BenchRecord};
use ttsnn_core::TtMode;
use ttsnn_infer::{plan_drift, ArchSpec, BatchPolicy, Engine, EngineConfig, QuantSpec, Session};
use ttsnn_snn::{checkpoint, ConvPolicy, SpikingModel, VggConfig, VggSnn};
use ttsnn_tensor::runtime::Runtime;
use ttsnn_tensor::{Rng, Tensor};

const TIMESTEPS: usize = 4;
const REQUESTS: usize = 16;
const ITERS: usize = 3;

fn vgg_cfg() -> VggConfig {
    VggConfig::vgg9(3, 10, (16, 16), 8)
}

fn engine_cfg() -> EngineConfig {
    EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::tt(TtMode::Ptt), TIMESTEPS)
        .merged()
        .with_batching(BatchPolicy { max_batch: 8, max_wait: Duration::from_millis(1) })
}

fn requests_per_sec(session: &Session, inputs: &[Tensor]) -> f64 {
    session.infer(inputs[0].clone()).expect("warmup request");
    let start = Instant::now();
    for _ in 0..ITERS {
        let tickets: Vec<_> = inputs.iter().map(|x| session.submit(x.clone())).collect();
        for t in tickets {
            t.wait().expect("bench request");
        }
    }
    (ITERS * inputs.len()) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let threads = Runtime::global().threads();
    println!("quant_throughput: {threads} kernel thread(s), VGG9 [PTT->merged], T={TIMESTEPS}\n");

    let mut rng = Rng::seed_from(42);
    let model = VggSnn::new(vgg_cfg(), &ConvPolicy::tt(TtMode::Ptt), &mut rng);
    let macs_per_timestep = model.macs_at(0) as f64;
    let mut ckpt = Vec::new();
    checkpoint::save_params(&model.params(), &mut ckpt).expect("serialize checkpoint");

    let mut rng = Rng::seed_from(7);
    let calibration: Vec<Tensor> =
        (0..4).map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng)).collect();
    let inputs: Vec<Tensor> =
        (0..REQUESTS).map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng)).collect();

    let f32_engine = Engine::load(engine_cfg(), ckpt.as_slice()).expect("f32 engine");
    let int8_engine =
        Engine::load_quantized(engine_cfg(), QuantSpec::new(calibration), ckpt.as_slice())
            .expect("int8 engine");
    let qi = int8_engine.info().quant.clone().expect("quant info");
    // The f32 plan stores the same weights the int8 plan froze, at 4
    // bytes each, plus the (float-in-both-plans) norm parameters.
    let f32_plan_bytes = qi.f32_bytes + int8_engine.info().num_params * 4;
    let int8_plan_bytes = qi.int8_bytes + int8_engine.info().num_params * 4;

    let f32_sess = f32_engine.session();
    let int8_sess = int8_engine.session();
    let f32_rps = requests_per_sec(&f32_sess, &inputs);
    let int8_rps = requests_per_sec(&int8_sess, &inputs);
    let drift = plan_drift(&f32_sess, &int8_sess, &inputs).expect("drift report");

    println!(
        "{:<26} {:>12.2} requests/s  {:>10} weight bytes",
        "f32 plan", f32_rps, f32_plan_bytes
    );
    println!(
        "{:<26} {:>12.2} requests/s  {:>10} weight bytes",
        "int8 plan", int8_rps, int8_plan_bytes
    );
    println!(
        "{:<26} {:>12.2}x throughput, {:.2}x storage",
        "int8 vs f32",
        int8_rps / f32_rps,
        f32_plan_bytes as f64 / int8_plan_bytes as f64
    );
    println!(
        "{:<26} agreement {:.1}%, mean |dlogit| {:.4}, max {:.4}",
        "plan drift",
        drift.agreement * 100.0,
        drift.mean_abs_err,
        drift.max_abs_err
    );

    // Modeled accelerator energy per inference (Table I datapath).
    let m = EnergyModel::nm28();
    let weights = qi.f32_bytes as f64 / 4.0;
    let activations = macs_per_timestep / (9.0 * 8.0); // rough per-layer output volume
    let e_f32 = serving_energy(
        macs_per_timestep,
        weights,
        activations,
        TIMESTEPS as f64,
        ServingPrecision::F32,
        &m,
    );
    let e_int8 = serving_energy(
        macs_per_timestep,
        weights,
        activations,
        TIMESTEPS as f64,
        ServingPrecision::Int8,
        &m,
    );
    println!(
        "{:<26} {:.1} nJ (f32) vs {:.1} nJ (int8) = {:.2}x modeled",
        "accelerator energy",
        e_f32.total_nj(),
        e_int8.total_nj(),
        e_f32.total_pj() / e_int8.total_pj()
    );

    let records = vec![
        BenchRecord {
            name: "f32_plan".into(),
            metrics: vec![
                ("requests_per_sec".into(), f32_rps),
                ("weight_bytes".into(), f32_plan_bytes as f64),
                ("timesteps".into(), TIMESTEPS as f64),
                ("threads".into(), threads as f64),
            ],
        },
        BenchRecord {
            name: "int8_plan".into(),
            metrics: vec![
                ("requests_per_sec".into(), int8_rps),
                ("weight_bytes".into(), int8_plan_bytes as f64),
                ("speedup_vs_f32".into(), int8_rps / f32_rps),
                ("storage_ratio_vs_f32".into(), f32_plan_bytes as f64 / int8_plan_bytes as f64),
                ("quantized_convs".into(), qi.quantized_convs as f64),
                ("argmax_agreement".into(), drift.agreement),
                ("mean_abs_logit_err".into(), drift.mean_abs_err),
                ("max_abs_logit_err".into(), drift.max_abs_err as f64),
            ],
        },
        BenchRecord {
            name: "modeled_accel_energy".into(),
            metrics: vec![
                ("f32_nj_per_inference".into(), e_f32.total_nj()),
                ("int8_nj_per_inference".into(), e_int8.total_nj()),
                ("modeled_energy_ratio".into(), e_f32.total_pj() / e_int8.total_pj()),
            ],
        },
    ];
    let path = "BENCH_quant_infer.json";
    write_json(path, &records).expect("write bench json");
    println!("\nwrote {path}");
}
