//! Convolution throughput: serial vs parallel runtime pipeline, GFLOP/s.
//!
//! Criterion-free. Times the batch-parallel im2col+GEMM convolution
//! pipeline (forward, input grad, weight grad) on one thread versus the
//! machine's full runtime, at the paper's typical layer geometries, and
//! writes `BENCH_conv_throughput.json` into the working directory.
//!
//! ```sh
//! cargo run -p ttsnn-bench --release --bin conv_throughput
//! ```

use std::time::Instant;

use ttsnn_bench::harness::micro::{write_json, BenchRecord};
use ttsnn_tensor::runtime::Runtime;
use ttsnn_tensor::{conv, Conv2dGeometry, Rng, Tensor};

fn time_best(mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    let budget = Instant::now();
    let mut iters = 0u32;
    while budget.elapsed().as_secs_f64() < 0.2 || iters < 3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
        iters += 1;
        if iters >= 1000 {
            break;
        }
    }
    best
}

fn main() {
    let rt = Runtime::global();
    let one = Runtime::new(1);
    println!("conv_throughput: {} worker thread(s) (TTSNN_NUM_THREADS overrides)\n", rt.threads());
    let mut rng = Rng::seed_from(7);
    let mut records: Vec<BenchRecord> = Vec::new();
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>9}",
        "layer", "1-thr GF/s", "N-thr GF/s", "bwd GF/s", "speedup"
    );
    // (B, C, O, HW, kernel, padding): a baseline 3x3 stage plus the TT
    // cores' asymmetric shapes at paper-like widths.
    let cases = [
        (8usize, 64usize, 64usize, (16usize, 16usize), (3usize, 3usize), (1usize, 1usize)),
        (8, 64, 20, (16, 16), (1, 1), (0, 0)),
        (8, 20, 20, (16, 16), (3, 1), (1, 0)),
        (16, 32, 32, (32, 32), (3, 3), (1, 1)),
    ];
    for &(b, c, o, hw, kernel, padding) in &cases {
        let g = Conv2dGeometry::new(c, o, hw, kernel, (1, 1), padding);
        let x = Tensor::randn(&[b, c, hw.0, hw.1], &mut rng);
        let w = Tensor::randn(&[o, c, kernel.0, kernel.1], &mut rng);
        let (oh, ow) = g.out_hw();
        let dy = Tensor::randn(&[b, o, oh, ow], &mut rng);
        let fwd_flops = 2 * b * g.macs();

        let serial = time_best(|| {
            conv::conv2d_with(&one, &x, &w, &g).expect("conv");
        });
        let par = time_best(|| {
            conv::conv2d_with(rt, &x, &w, &g).expect("conv");
        });
        // Backward = input grad + weight grad, ~2x forward FLOPs.
        let bwd = time_best(|| {
            conv::conv2d_input_grad_with(rt, &dy, &w, &g).expect("dx");
            conv::conv2d_weight_grad_with(rt, &x, &dy, &g).expect("dw");
        });

        let label = format!("B{b} {c}->{o} {}x{} @{}x{}", kernel.0, kernel.1, hw.0, hw.1);
        let gf = |secs: f64, flops: usize| flops as f64 / secs / 1e9;
        println!(
            "{label:<26} {:>12.2} {:>12.2} {:>12.2} {:>8.2}x",
            gf(serial, fwd_flops),
            gf(par, fwd_flops),
            gf(bwd, 2 * fwd_flops),
            serial / par
        );
        records.push(BenchRecord {
            name: format!("conv_{}_{}to{}_{}x{}", b, c, o, kernel.0, kernel.1),
            metrics: vec![
                ("serial_gflops".into(), gf(serial, fwd_flops)),
                ("parallel_gflops".into(), gf(par, fwd_flops)),
                ("backward_gflops".into(), gf(bwd, 2 * fwd_flops)),
                ("speedup_vs_serial".into(), serial / par),
                ("threads".into(), rt.threads() as f64),
            ],
        });
    }
    let path = "BENCH_conv_throughput.json";
    write_json(path, &records).expect("write bench json");
    println!("\nwrote {path}");
}
