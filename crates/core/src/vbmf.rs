//! Global analytic Variational Bayesian Matrix Factorization (EVBMF).
//!
//! Algorithm 1, line 2 of the paper obtains "near-optimal ranks with
//! automatic posterior approximation" from VBMF (Nakajima et al., *Global
//! analytic solution of fully-observed variational Bayesian matrix
//! factorization*, JMLR 2013). This module implements the fully-observed
//! EVBMF estimator: the noise variance `σ²` is found by a 1-D bounded
//! minimization of the free energy, and the rank is the number of singular
//! values exceeding the analytic shrinkage threshold.

use ttsnn_tensor::{linalg, ShapeError, Tensor};

use crate::permute::circular_permute;

/// Result of an EVBMF analysis of one matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct VbmfEstimate {
    /// Estimated rank (number of retained components). May be zero for a
    /// pure-noise matrix.
    pub rank: usize,
    /// Estimated noise variance `σ²`.
    pub sigma2: f32,
    /// The singular values of the input, non-increasing.
    pub singular_values: Vec<f32>,
}

/// Runs global analytic EVBMF on a 2-D matrix and returns the estimated
/// rank and noise variance.
///
/// # Errors
///
/// Returns [`ShapeError`] if `y` is not 2-D or has fewer than 2 rows/cols.
pub fn evbmf(y: &Tensor) -> Result<VbmfEstimate, ShapeError> {
    if y.ndim() != 2 {
        return Err(ShapeError::new(format!("evbmf: expected 2-D matrix, got {:?}", y.shape())));
    }
    // Orient so L <= M.
    let (rows, cols) = (y.shape()[0], y.shape()[1]);
    if rows.min(cols) < 2 {
        return Err(ShapeError::new(format!(
            "evbmf: matrix {:?} too small for rank analysis",
            y.shape()
        )));
    }
    let yt;
    let v = if rows <= cols {
        y
    } else {
        yt = y.transpose()?;
        &yt
    };
    let (l, m) = (v.shape()[0] as f64, v.shape()[1] as f64);
    let h = v.shape()[0]; // full candidate rank

    let dec = linalg::svd(v)?;
    let s: Vec<f64> = dec.s.iter().map(|&x| x as f64).collect();

    let alpha = l / m;
    let tauubar = 2.5129 * alpha.sqrt();
    let xubar = (1.0 + tauubar) * (1.0 + alpha / tauubar);

    // Bounds for the noise-variance search (Nakajima et al., Sec. 6).
    let eh_ub = (((l / (1.0 + alpha)).ceil() as usize).saturating_sub(1)).min(h).saturating_sub(1);
    let tail_start = (eh_ub + 1).min(h - 1);
    let sum_s2: f64 = s.iter().map(|x| x * x).sum();
    let upper_bound = sum_s2 / (l * m);
    let tail: &[f64] = &s[tail_start..];
    let tail_mean_sq = tail.iter().map(|x| x * x).sum::<f64>() / tail.len().max(1) as f64;
    let lower_bound =
        (s[tail_start] * s[tail_start] / (m * xubar)).max(tail_mean_sq / m).max(1e-12);

    let sigma2 = if lower_bound >= upper_bound {
        upper_bound.max(1e-12)
    } else {
        golden_section(|sig| evb_free_energy(sig, l, m, &s, xubar), lower_bound, upper_bound, 200)
    };

    // Analytic shrinkage threshold: retain s_i with s_i² > M·σ²·xubar.
    let threshold = (m * sigma2 * xubar).sqrt();
    let rank = s.iter().filter(|&&x| x > threshold).count();
    Ok(VbmfEstimate { rank, sigma2: sigma2 as f32, singular_values: dec.s.clone() })
}

/// The σ²-dependent part of the EVB free energy (to be minimized).
fn evb_free_energy(sigma2: f64, l: f64, m: f64, s: &[f64], xubar: f64) -> f64 {
    let alpha = l / m;
    let mut obj = 0.0f64;
    for &sv in s {
        let x = (sv * sv / (m * sigma2)).max(1e-300);
        if x > xubar {
            let tau = tau_of(x, alpha);
            obj += x - tau;
            obj += ((tau + 1.0) / x).ln();
            obj += alpha * (tau / alpha + 1.0).ln();
        } else {
            obj += x - x.ln();
        }
    }
    obj
}

/// `τ(x; α) = (x − (1+α) + √((x − (1+α))² − 4α)) / 2` for `x` above the
/// detectability bound.
fn tau_of(x: f64, alpha: f64) -> f64 {
    let t = x - (1.0 + alpha);
    0.5 * (t + (t * t - 4.0 * alpha).max(0.0).sqrt())
}

/// Bounded golden-section minimization of a unimodal-ish 1-D function.
fn golden_section(f: impl Fn(f64) -> f64, mut a: f64, mut b: f64, iters: usize) -> f64 {
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..iters {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
        if (b - a).abs() < 1e-14 {
            break;
        }
    }
    0.5 * (a + b)
}

/// Estimates the per-layer TT-rank for an `(O, I, 3, 3)` convolution weight
/// (Algorithm 1 line 2): EVBMF is run on the two channel-mode unfoldings of
/// the circularly permuted weight (the `I×9O` and `O×9I` matricizations),
/// and the smaller estimate — clamped to `[1, min(I, O)]` — is the uniform
/// rank used by the TT cores of Fig. 1.
///
/// # Errors
///
/// Returns [`ShapeError`] if `weight` is not a 4-D kernel with 3×3 spatial
/// taps.
pub fn estimate_conv_rank(weight: &Tensor) -> Result<usize, ShapeError> {
    if weight.ndim() != 4 || weight.shape()[2] != 3 || weight.shape()[3] != 3 {
        return Err(ShapeError::new(format!(
            "estimate_conv_rank: expected (O, I, 3, 3) weight, got {:?}",
            weight.shape()
        )));
    }
    let (o, i) = (weight.shape()[0], weight.shape()[1]);
    let wp = circular_permute(weight)?; // (I, 3, 3, O)
    let mode_i = wp.reshape(&[i, 9 * o])?;
    let mode_o = wp.permute(&[3, 0, 1, 2])?.reshape(&[o, 9 * i])?;
    let r_i = evbmf(&mode_i)?.rank;
    let r_o = evbmf(&mode_o)?.rank;
    Ok(r_i.min(r_o).clamp(1, i.min(o)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttsnn_tensor::Rng;

    /// low-rank + noise matrix of shape (l, m) with given true rank.
    fn noisy_low_rank(l: usize, m: usize, rank: usize, noise: f32, rng: &mut Rng) -> Tensor {
        let u = Tensor::randn(&[l, rank], rng);
        let v = Tensor::randn(&[rank, m], rng);
        let signal = u.matmul(&v).unwrap();
        let n = Tensor::randn(&[l, m], rng).scale(noise);
        signal.add(&n).unwrap()
    }

    #[test]
    fn recovers_known_rank() {
        let mut rng = Rng::seed_from(20);
        for rank in [1usize, 3, 6] {
            let y = noisy_low_rank(24, 40, rank, 0.05, &mut rng);
            let est = evbmf(&y).unwrap();
            assert_eq!(est.rank, rank, "true rank {rank}, estimated {}", est.rank);
        }
    }

    #[test]
    fn pure_noise_gives_tiny_rank() {
        let mut rng = Rng::seed_from(21);
        let y = Tensor::randn(&[30, 50], &mut rng);
        let est = evbmf(&y).unwrap();
        assert!(est.rank <= 2, "noise matrix estimated rank {}", est.rank);
    }

    #[test]
    fn strong_noise_hides_weak_components() {
        let mut rng = Rng::seed_from(22);
        // strong rank-2 signal + weak rank-6 tail
        let strong = noisy_low_rank(20, 30, 2, 0.0, &mut rng).scale(10.0);
        let weak = noisy_low_rank(20, 30, 6, 0.0, &mut rng).scale(0.02);
        let noise = Tensor::randn(&[20, 30], &mut rng).scale(0.5);
        let y = strong.add(&weak).unwrap().add(&noise).unwrap();
        let est = evbmf(&y).unwrap();
        assert!(est.rank >= 2 && est.rank <= 4, "estimated {}", est.rank);
    }

    #[test]
    fn orientation_invariant() {
        let mut rng = Rng::seed_from(23);
        let y = noisy_low_rank(16, 32, 4, 0.05, &mut rng);
        let a = evbmf(&y).unwrap();
        let b = evbmf(&y.transpose().unwrap()).unwrap();
        assert_eq!(a.rank, b.rank);
    }

    #[test]
    fn sigma2_tracks_noise_level() {
        let mut rng = Rng::seed_from(24);
        let lo = evbmf(&noisy_low_rank(30, 40, 3, 0.1, &mut rng)).unwrap();
        let hi = evbmf(&noisy_low_rank(30, 40, 3, 1.0, &mut rng)).unwrap();
        assert!(hi.sigma2 > lo.sigma2);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(evbmf(&Tensor::zeros(&[5])).is_err());
        assert!(evbmf(&Tensor::zeros(&[1, 9])).is_err());
        assert!(estimate_conv_rank(&Tensor::zeros(&[4, 4, 5, 5])).is_err());
    }

    #[test]
    fn conv_rank_estimate_tracks_tt_rank() {
        use crate::merge::merge_stt;
        use crate::ttsvd::TtCores;
        let mut rng = Rng::seed_from(25);
        // Weight that is exactly TT-rank 4 plus small noise.
        let cores = TtCores::randn(16, 16, 4, &mut rng);
        let dense = merge_stt(&cores).unwrap();
        let noise = Tensor::randn(&[16, 16, 3, 3], &mut rng).scale(1e-3);
        let noisy = dense.add(&noise).unwrap();
        let r = estimate_conv_rank(&noisy).unwrap();
        assert!((3..=6).contains(&r), "estimated rank {r} for true TT-rank 4");
    }

    #[test]
    fn conv_rank_clamped_to_channel_bound() {
        let mut rng = Rng::seed_from(26);
        // Full-rank random weight: estimate must still be <= min(I, O).
        let w = Tensor::randn(&[8, 4, 3, 3], &mut rng);
        let r = estimate_conv_rank(&w).unwrap();
        assert!((1..=4).contains(&r));
    }

    #[test]
    fn singular_values_reported_sorted() {
        let mut rng = Rng::seed_from(27);
        let y = noisy_low_rank(10, 12, 2, 0.1, &mut rng);
        let est = evbmf(&y).unwrap();
        for w in est.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
