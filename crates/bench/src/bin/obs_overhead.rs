//! Tracing-overhead measurement: the same inference workload with
//! request-lifecycle tracing enabled vs disabled.
//!
//! Criterion-free. The bench drives an in-process serving cluster (the
//! same scheduler → batcher → engine path the network plane uses, minus
//! socket noise) with closed waves of traced and untraced requests,
//! interleaved round-robin so clock drift and cache state hit both modes
//! equally. Traced rounds mint a real trace id per request, so every
//! hot-path hook fires: stage spans, per-timestep children, kernel
//! regions, stage histograms, and the flight recorder. Untraced rounds
//! run with tracing globally disabled (`ttsnn_obs::set_enabled(false)`,
//! what `TTSNN_TRACE=off` resolves to), so the hooks collapse to one
//! relaxed atomic load.
//!
//! Written to `BENCH_obs_overhead.json`: throughput in both modes and
//! the relative overhead percentage. The tracing contract is also
//! *checked*, not assumed: logits from traced and untraced rounds must
//! be bit-identical (tracing reads clocks and copies events, never data).
//!
//! ```sh
//! cargo run -p ttsnn-bench --release --bin obs_overhead
//! ```

use std::time::{Duration, Instant};

use ttsnn_bench::harness::micro::{write_json, BenchRecord};
use ttsnn_core::TtMode;
use ttsnn_infer::{ArchSpec, BatchPolicy, ClusterConfig, EngineConfig, SubmitOptions};
use ttsnn_snn::{checkpoint, ConvPolicy, SpikingModel, VggConfig, VggSnn};
use ttsnn_tensor::{Rng, Tensor};

const TIMESTEPS: usize = 4;
const WAVE: usize = 8;
const WAVES_PER_ROUND: usize = 4;
const ROUNDS: usize = 6; // per mode, interleaved

fn vgg_cfg() -> VggConfig {
    VggConfig::vgg9(3, 10, (16, 16), 8)
}

/// One closed wave per iteration: submit `WAVE` requests, wait for all,
/// repeat. Returns elapsed wall clock and every logit vector's bits.
fn run_round(
    session: &ttsnn_infer::ClusterSession,
    inputs: &[Tensor],
    traced: bool,
) -> (Duration, Vec<Vec<u32>>) {
    let mut bits = Vec::with_capacity(WAVE * WAVES_PER_ROUND);
    let t0 = Instant::now();
    for wave in 0..WAVES_PER_ROUND {
        let tickets: Vec<_> = (0..WAVE)
            .map(|i| {
                let mut opts = SubmitOptions::default().with_tenant(1);
                if traced {
                    opts = opts.with_trace(ttsnn_obs::next_trace_id());
                }
                session
                    .try_submit_with(inputs[(wave * WAVE + i) % inputs.len()].clone(), opts)
                    .expect("submit")
            })
            .collect();
        for t in tickets {
            let logits = t.wait().expect("inference");
            bits.push(logits.data().iter().map(|v| v.to_bits()).collect());
        }
    }
    (t0.elapsed(), bits)
}

fn main() {
    let mut rng = Rng::seed_from(42);
    let model = VggSnn::new(vgg_cfg(), &ConvPolicy::tt(TtMode::Ptt), &mut rng);
    let mut ckpt = Vec::new();
    checkpoint::save_params(&model.params(), &mut ckpt).expect("serialize checkpoint");
    let config = ClusterConfig::new(
        EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::tt(TtMode::Ptt), TIMESTEPS)
            .merged()
            .with_batching(BatchPolicy { max_batch: WAVE, max_wait: Duration::from_millis(1) }),
    );
    let cluster = ttsnn_infer::Cluster::load(config, ckpt.as_slice()).expect("load cluster");
    let session = cluster.session();

    let inputs: Vec<Tensor> =
        (0..WAVE * 2).map(|_| Tensor::randn(&[3, 16, 16], &mut rng)).collect();

    // Warmup (first-touch allocation, replica spin-up), untimed.
    ttsnn_obs::set_enabled(true);
    run_round(&session, &inputs, true);

    let requests_per_round = (WAVE * WAVES_PER_ROUND) as f64;
    let mut traced_secs = 0.0;
    let mut off_secs = 0.0;
    let mut reference: Option<Vec<Vec<u32>>> = None;
    for _ in 0..ROUNDS {
        ttsnn_obs::set_enabled(true);
        let (dt, bits) = run_round(&session, &inputs, true);
        traced_secs += dt.as_secs_f64();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(r, &bits, "traced logits must be bit-identical across rounds"),
        }

        ttsnn_obs::set_enabled(false);
        let (dt, bits) = run_round(&session, &inputs, false);
        off_secs += dt.as_secs_f64();
        assert_eq!(
            reference.as_ref().unwrap(),
            &bits,
            "tracing must not change a single logit bit"
        );
    }
    ttsnn_obs::set_enabled(true);

    let traced_rps = ROUNDS as f64 * requests_per_round / traced_secs;
    let off_rps = ROUNDS as f64 * requests_per_round / off_secs;
    let overhead_pct = (off_rps - traced_rps) / off_rps * 100.0;
    println!(
        "obs_overhead: tracing on vs off, {} requests per mode",
        ROUNDS * WAVE * WAVES_PER_ROUND
    );
    println!("  traced: {traced_rps:>8.1} req/s");
    println!("  off:    {off_rps:>8.1} req/s");
    println!("  overhead: {overhead_pct:.2}% (logits bit-identical in both modes)");

    write_json(
        "BENCH_obs_overhead.json",
        &[BenchRecord {
            name: "obs_overhead".into(),
            metrics: vec![
                ("traced_rps".into(), traced_rps),
                ("off_rps".into(), off_rps),
                ("overhead_pct".into(), overhead_pct),
                ("requests_per_mode".into(), ROUNDS as f64 * requests_per_round),
            ],
        }],
    )
    .expect("write BENCH_obs_overhead.json");
    println!("wrote BENCH_obs_overhead.json");
}
