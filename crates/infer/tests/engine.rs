//! Engine/session determinism and robustness tests.
//!
//! The headline property: a request's logits are **bit-identical**
//! whatever batch the dynamic micro-batcher coalesced it into, whatever
//! the submission concurrency, and equal to a batch-of-1 pass through the
//! *training* plane of the same checkpoint — the serving extension of the
//! workspace determinism contract. CI re-runs this suite under
//! `TTSNN_NUM_THREADS=2` and `8`.

use std::time::Duration;

use proptest::prelude::*;
use ttsnn_core::TtMode;
use ttsnn_infer::{ArchSpec, BatchPolicy, Engine, EngineConfig, InferError};
use ttsnn_snn::{checkpoint, ConvPolicy, ResNetConfig, ResNetSnn, SpikingModel, TrainForward};
use ttsnn_tensor::{Rng, Tensor};
use ttsnn_testutil::{vgg9_tiny as vgg_cfg, vgg_checkpoint};

const T: usize = 2;

fn resnet_cfg() -> ResNetConfig {
    ttsnn_testutil::resnet20_tiny(4)
}

fn samples(seed: u64, n: usize) -> Vec<Tensor> {
    ttsnn_testutil::samples(seed ^ 0xABCD, n)
}

/// Reference: the training plane on a batch of one — per-sample summed
/// logits under direct coding (frame repeated every timestep).
fn train_plane_reference(model: &mut impl TrainForward, sample: &Tensor) -> Tensor {
    ttsnn_testutil::train_plane_reference(model, sample, T)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Coalescing policy cannot change a single output bit, and serving
    /// equals the training plane at batch size 1.
    #[test]
    fn batching_invariance_and_train_plane_parity(seed in 0u64..500) {
        let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::tt(TtMode::Ptt), seed);
        let inputs = samples(seed, 6);
        let expected: Vec<Tensor> = inputs
            .iter()
            .map(|s| train_plane_reference(&mut reference_model, s))
            .collect();
        for (max_batch, max_wait_ms) in [(1usize, 0u64), (3, 40), (6, 40)] {
            let engine = Engine::load(
                EngineConfig::new(
                    ArchSpec::Vgg(vgg_cfg()),
                    ConvPolicy::tt(TtMode::Ptt),
                    T,
                )
                .with_batching(BatchPolicy {
                    max_batch,
                    max_wait: Duration::from_millis(max_wait_ms),
                }),
                ckpt.as_slice(),
            )
            .unwrap();
            let session = engine.session();
            // Submit everything first so the batcher actually coalesces.
            let tickets: Vec<_> = inputs.iter().map(|s| session.submit(s.clone())).collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                let got = ticket.wait().unwrap();
                prop_assert_eq!(
                    &got, &expected[i],
                    "sample {} diverged under max_batch={} (batching must be invisible)",
                    i, max_batch
                );
            }
        }
    }
}

#[test]
fn concurrent_sessions_get_bit_identical_answers() {
    let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::Baseline, 77);
    let inputs = samples(77, 8);
    let expected: Vec<Tensor> =
        inputs.iter().map(|s| train_plane_reference(&mut reference_model, s)).collect();
    let engine = Engine::load(
        EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::Baseline, T)
            .with_batching(BatchPolicy { max_batch: 4, max_wait: Duration::from_millis(30) }),
        ckpt.as_slice(),
    )
    .unwrap();
    let results: Vec<(usize, Tensor)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            let session = engine.session();
            handles.push(scope.spawn(move || (i, session.infer(input.clone()).unwrap())));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, got) in results {
        assert_eq!(got, expected[i], "concurrent request {i} diverged");
    }
}

#[test]
fn merged_plan_approximates_tt_plan_and_reports_merge() {
    let (ckpt, _) = vgg_checkpoint(&ConvPolicy::tt(TtMode::Ptt), 5);
    let base = EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::tt(TtMode::Ptt), T);
    let tt_engine = Engine::load(base.clone(), ckpt.as_slice()).unwrap();
    let merged_engine = Engine::load(base.merged(), ckpt.as_slice()).unwrap();
    assert_eq!(tt_engine.info().merged_layers, 0);
    assert_eq!(merged_engine.info().merged_layers, 5); // VGG9: stem stays dense
    assert!(merged_engine.info().model.contains("merged-dense"));
    let x = samples(5, 1).remove(0);
    let tt = tt_engine.session().infer(x.clone()).unwrap();
    let merged = merged_engine.session().infer(x).unwrap();
    assert!(
        tt.max_abs_diff(&merged).unwrap() < 1e-2,
        "merged-dense serving must reproduce the TT plan"
    );
}

#[test]
fn resnet_event_style_requests_with_per_timestep_frames() {
    let mut rng = Rng::seed_from(9);
    let model = ResNetSnn::new(resnet_cfg(), &ConvPolicy::tt(TtMode::Stt), &mut rng);
    let mut ckpt = Vec::new();
    checkpoint::save_params(&model.params(), &mut ckpt).unwrap();
    let engine = Engine::load(
        EngineConfig::new(ArchSpec::ResNet(resnet_cfg()), ConvPolicy::tt(TtMode::Stt), T),
        ckpt.as_slice(),
    )
    .unwrap();
    let session = engine.session();
    // (T, C, H, W): explicit per-timestep frames.
    let x = Tensor::rand_uniform(&[T, 3, 8, 8], 0.0, 1.0, &mut rng);
    let logits = session.infer(x).unwrap();
    assert_eq!(logits.shape(), &[4]);
    assert_eq!(engine.info().num_classes, 4);
}

#[test]
fn duration_max_means_wait_until_full() {
    // `max_wait: Duration::MAX` is a natural "hold until max_batch"
    // sentinel; it must not overflow Instant arithmetic and panic the
    // executor.
    let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::Baseline, 8);
    let engine = Engine::load(
        EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::Baseline, T)
            .with_batching(BatchPolicy { max_batch: 2, max_wait: Duration::MAX }),
        ckpt.as_slice(),
    )
    .unwrap();
    let session = engine.session();
    let inputs = samples(8, 2);
    // Submit exactly max_batch requests; the batch fills and executes.
    let t0 = session.submit(inputs[0].clone());
    let t1 = session.submit(inputs[1].clone());
    assert_eq!(t0.wait().unwrap(), train_plane_reference(&mut reference_model, &inputs[0]));
    assert_eq!(t1.wait().unwrap(), train_plane_reference(&mut reference_model, &inputs[1]));
}

#[test]
fn bad_inputs_fail_their_own_ticket_only() {
    let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::Baseline, 3);
    let engine = Engine::load(
        EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::Baseline, T)
            .with_batching(BatchPolicy { max_batch: 3, max_wait: Duration::from_millis(30) }),
        ckpt.as_slice(),
    )
    .unwrap();
    let session = engine.session();
    let good_input = samples(3, 1).remove(0);
    let good = session.submit(good_input.clone());
    let bad = session.submit(Tensor::zeros(&[2, 8, 8])); // wrong channels
    let expected = train_plane_reference(&mut reference_model, &good_input);
    assert_eq!(good.wait().unwrap(), expected, "good request must survive a bad co-traveller");
    match bad.wait() {
        Err(InferError::Shape(msg)) => assert!(msg.contains("does not match the plan"), "{msg}"),
        other => panic!("expected shape error, got {other:?}"),
    }
}

#[test]
fn load_rejects_mismatched_checkpoint() {
    let mut rng = Rng::seed_from(4);
    // Checkpoint from a *different* architecture (ResNet20 vs VGG9).
    let wrong = ResNetSnn::new(resnet_cfg(), &ConvPolicy::Baseline, &mut rng);
    let mut ckpt = Vec::new();
    checkpoint::save_params(&wrong.params(), &mut ckpt).unwrap();
    let result = Engine::load(
        EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::Baseline, T),
        ckpt.as_slice(),
    );
    match result {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
        Ok(_) => panic!("mismatched checkpoint must be rejected"),
    }
}

#[test]
fn tickets_report_engine_shutdown() {
    let (ckpt, _) = vgg_checkpoint(&ConvPolicy::Baseline, 6);
    let session = {
        let engine = Engine::load(
            EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::Baseline, T),
            ckpt.as_slice(),
        )
        .unwrap();
        engine.session()
        // engine dropped here: executor joins
    };
    match session.infer(samples(6, 1).remove(0)) {
        Err(InferError::EngineClosed) => {}
        other => panic!("expected EngineClosed, got {other:?}"),
    }
}

#[test]
fn plan_reports_sparse_mode_and_measured_density() {
    let (ckpt, _) = vgg_checkpoint(&ConvPolicy::Baseline, 31);
    let engine = Engine::load(
        EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::Baseline, T),
        ckpt.as_slice(),
    )
    .unwrap();
    // The frozen plan records which dispatch mode it resolved at load.
    assert!(
        ["auto", "force", "off"].contains(&engine.info().sparse_mode.as_str()),
        "unexpected sparse mode {:?}",
        engine.info().sparse_mode
    );
    let session = engine.session();
    let before = session.spike_density().unwrap();
    assert!(
        before.per_layer.iter().all(|&d| d == 0.0),
        "no traffic yet, densities must be 0: {:?}",
        before.per_layer
    );
    for input in samples(31, 3) {
        session.infer(input).unwrap();
    }
    let after = session.spike_density().unwrap();
    assert_eq!(after.per_layer.len(), 6, "one density per VGG9 LIF layer");
    assert!(after.per_layer.iter().all(|&d| (0.0..=1.0).contains(&d)));
    assert!(after.per_layer.iter().any(|&d| d > 0.0), "traffic must register spike activity");
    let mean = after.mean.expect("mean density tracked after traffic");
    assert!((0.0..=1.0).contains(&mean));
}
