use std::cell::{Ref, RefCell};
use std::collections::HashSet;
use std::rc::Rc;

use ttsnn_tensor::Tensor;

/// Closure that, given the gradient flowing into a node's output, pushes
/// gradient contributions into the node's parents (via [`Var::add_grad`]).
pub type BackwardFn = Box<dyn Fn(&Tensor, &[Var])>;

pub(crate) struct VarInner {
    id: u64,
    value: RefCell<Tensor>,
    grad: RefCell<Option<Tensor>>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
}

thread_local! {
    static NEXT_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn fresh_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Total autograd nodes ever created on this thread (leaves and interior
/// nodes alike). Monotonic; never reset.
///
/// This is the observable behind the inference plane's "graph-free"
/// contract: code that must not build autograd graphs (e.g.
/// `ttsnn_snn::evaluate` routed through `InferForward`) is tested by
/// asserting the counter does not move across the call.
pub fn nodes_created() -> u64 {
    NEXT_ID.with(|c| c.get())
}

/// A node in the reverse-mode autodiff graph.
///
/// `Var` is a cheaply clonable handle (`Rc` inside) to a tensor value plus
/// the bookkeeping needed to backpropagate through the operation that
/// produced it. Leaf nodes are created with [`Var::param`] (trainable) or
/// [`Var::constant`] (inputs); interior nodes come from the ops in
/// [`crate::ops`], most of which are also exposed as methods.
///
/// `Var` is deliberately **not** `Send`/`Sync`: the training loop of the
/// paper (and of this reproduction) is single-threaded per model, and a
/// thread-local id counter keeps graph bookkeeping allocation-free.
///
/// ```
/// use ttsnn_autograd::Var;
/// use ttsnn_tensor::Tensor;
///
/// # fn main() -> Result<(), ttsnn_tensor::ShapeError> {
/// let a = Var::param(Tensor::from_vec(vec![1.0, 2.0], &[2])?);
/// let b = Var::param(Tensor::from_vec(vec![3.0, 4.0], &[2])?);
/// let loss = a.mul(&b)?.sum_to_scalar();
/// loss.backward();
/// assert_eq!(a.grad().unwrap().data(), &[3.0, 4.0]);
/// assert_eq!(b.grad().unwrap().data(), &[1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Var(pub(crate) Rc<VarInner>);

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.0.id)
            .field("shape", &self.0.value.borrow().shape().to_vec())
            .field("requires_grad", &self.0.requires_grad)
            .field("parents", &self.0.parents.len())
            .finish()
    }
}

impl Var {
    /// A trainable leaf: participates in gradient computation.
    pub fn param(value: Tensor) -> Self {
        Self(Rc::new(VarInner {
            id: fresh_id(),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad: true,
            parents: Vec::new(),
            backward: None,
        }))
    }

    /// A non-trainable leaf (network input, label, constant).
    pub fn constant(value: Tensor) -> Self {
        Self(Rc::new(VarInner {
            id: fresh_id(),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad: false,
            parents: Vec::new(),
            backward: None,
        }))
    }

    /// Builds a node for a **custom differentiable operation** defined
    /// outside this crate: `value` is the eagerly computed forward result,
    /// `parents` the inputs, and `backward` distributes the output
    /// gradient to the parents with [`Var::add_grad`].
    ///
    /// Downstream crates use this to add ops without forking the engine —
    /// e.g. `ttsnn_core::quant::fake_quant_int8`'s straight-through
    /// estimator.
    ///
    /// ```
    /// use ttsnn_autograd::Var;
    /// use ttsnn_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), ttsnn_tensor::ShapeError> {
    /// let x = Var::param(Tensor::from_vec(vec![-1.0, 2.0], &[2])?);
    /// // custom op: clamp(x, 0, 1) with straight-through gradient
    /// let y = Var::custom(
    ///     x.value().map(|v| v.clamp(0.0, 1.0)),
    ///     vec![x.clone()],
    ///     Box::new(|g, parents| parents[0].add_grad(g)),
    /// );
    /// y.sum_to_scalar().backward();
    /// assert_eq!(x.grad().unwrap().data(), &[1.0, 1.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn custom(value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Self {
        Self::from_op(value, parents, backward)
    }

    /// Accumulates a gradient contribution into this node (no-op for nodes
    /// that do not require gradients). Intended for use inside
    /// [`Var::custom`] backward closures.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s shape differs from previously accumulated
    /// gradients.
    pub fn add_grad(&self, g: &Tensor) {
        self.accumulate_grad(g);
    }

    pub(crate) fn from_op(value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Self {
        let requires_grad = parents.iter().any(|p| p.0.requires_grad);
        Self(Rc::new(VarInner {
            id: fresh_id(),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad,
            parents,
            backward: if requires_grad { Some(backward) } else { None },
        }))
    }

    /// Borrow of the node's current value.
    ///
    /// # Panics
    ///
    /// Panics if the value is concurrently mutably borrowed (only possible
    /// from inside op implementations).
    pub fn value(&self) -> Ref<'_, Tensor> {
        self.0.value.borrow()
    }

    /// Clone of the node's current value.
    pub fn to_tensor(&self) -> Tensor {
        self.0.value.borrow().clone()
    }

    /// The value's shape.
    pub fn shape(&self) -> Vec<usize> {
        self.0.value.borrow().shape().to_vec()
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// The accumulated gradient, if [`Var::backward`] has reached this node.
    pub fn grad(&self) -> Option<Tensor> {
        self.0.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Overwrites the value of a **leaf** in place (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if the new tensor's shape differs from the current one.
    pub fn set_value(&self, value: Tensor) {
        assert_eq!(
            self.0.value.borrow().shape(),
            value.shape(),
            "set_value: shape must be preserved"
        );
        *self.0.value.borrow_mut() = value;
    }

    /// Applies `f` to the stored value in place (used by optimizers).
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.0.value.borrow_mut());
    }

    /// A new leaf sharing this node's current value but cut off from the
    /// graph — gradients will not flow past it. Mirrors `tensor.detach()` in
    /// PyTorch; used for the LIF hard-reset path.
    pub fn detach(&self) -> Var {
        Var::constant(self.to_tensor())
    }

    /// Unique node id (useful for debugging graph structure).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    pub(crate) fn accumulate_grad(&self, g: &Tensor) {
        if !self.0.requires_grad {
            return;
        }
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => {
                existing.add_scaled(g, 1.0).expect("gradient shape mismatch during accumulation");
            }
            None => *slot = Some(g.clone()),
        }
    }

    /// Runs reverse-mode differentiation from this node, accumulating
    /// gradients into every `requires_grad` node of the graph.
    ///
    /// The seed gradient is a tensor of ones shaped like this node's value,
    /// so calling `backward` on a scalar loss yields ordinary gradients.
    ///
    /// # Panics
    ///
    /// Panics if called on a node with more than one element (reduce to a
    /// scalar first, e.g. with [`Var::sum_to_scalar`]).
    pub fn backward(&self) {
        assert_eq!(
            self.value().len(),
            1,
            "backward: call on a scalar loss (got shape {:?})",
            self.shape()
        );
        self.backward_with_seed(&Tensor::ones(&self.shape()));
    }

    /// Runs reverse-mode differentiation with an explicit seed gradient
    /// (vector–Jacobian product).
    ///
    /// # Panics
    ///
    /// Panics if `seed`'s shape differs from this node's value shape.
    pub fn backward_with_seed(&self, seed: &Tensor) {
        assert_eq!(
            seed.shape(),
            self.shape().as_slice(),
            "backward_with_seed: seed shape mismatch"
        );
        // Iterative topological sort (post-order DFS) to avoid recursion
        // depth limits on long BPTT chains.
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Var, bool)> = vec![(self.clone(), false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
                continue;
            }
            if !visited.insert(node.0.id) {
                continue;
            }
            if !node.0.requires_grad {
                continue;
            }
            stack.push((node.clone(), true));
            for p in &node.0.parents {
                if p.0.requires_grad && !visited.contains(&p.0.id) {
                    stack.push((p.clone(), false));
                }
            }
        }
        self.accumulate_grad(seed);
        for node in order.iter().rev() {
            let grad = node.0.grad.borrow().clone();
            if let (Some(grad), Some(backward)) = (grad, node.0.backward.as_ref()) {
                backward(&grad, &node.0.parents);
            }
        }
        // Free intermediate gradients: keep only leaves' grads.
        for node in &order {
            if node.0.backward.is_some() {
                *node.0.grad.borrow_mut() = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttsnn_tensor::Rng;

    #[test]
    fn leaf_properties() {
        let p = Var::param(Tensor::ones(&[2, 2]));
        assert!(p.requires_grad());
        assert!(p.grad().is_none());
        let c = Var::constant(Tensor::ones(&[2]));
        assert!(!c.requires_grad());
    }

    #[test]
    fn backward_on_scalar_sets_leaf_grad() {
        let p = Var::param(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let loss = p.sum_to_scalar();
        loss.backward();
        assert_eq!(p.grad().unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_on_non_scalar_panics() {
        let p = Var::param(Tensor::ones(&[3]));
        p.backward();
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let p = Var::param(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let l1 = p.scale(3.0).sum_to_scalar();
        l1.backward();
        let l2 = p.scale(5.0).sum_to_scalar();
        l2.backward();
        assert_eq!(p.grad().unwrap().data(), &[8.0]);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    fn detach_blocks_gradients() {
        let p = Var::param(Tensor::from_vec(vec![4.0], &[1]).unwrap());
        let d = p.detach();
        let loss = d.scale(10.0).sum_to_scalar();
        loss.backward();
        assert!(p.grad().is_none());
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // y = x*x + x  => dy/dx = 2x + 1
        let x = Var::param(Tensor::from_vec(vec![3.0], &[1]).unwrap());
        let y = x.mul(&x).unwrap().add(&x).unwrap().sum_to_scalar();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[7.0]);
    }

    #[test]
    fn shared_subexpression_visited_once() {
        // z = (x+x); y = z*z => dy/dx = 2*z*2 = 8x
        let x = Var::param(Tensor::from_vec(vec![1.5], &[1]).unwrap());
        let z = x.add(&x).unwrap();
        let y = z.mul(&z).unwrap().sum_to_scalar();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[12.0]);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 5000-node chain exercises the iterative DFS.
        let x = Var::param(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mut y = x.clone();
        for _ in 0..5000 {
            y = y.add_scalar(0.0);
        }
        y.sum_to_scalar().backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0]);
    }

    #[test]
    fn update_and_set_value() {
        let p = Var::param(Tensor::zeros(&[2]));
        p.update_value(|t| t.map_inplace(|_| 5.0));
        assert_eq!(p.to_tensor().data(), &[5.0, 5.0]);
        p.set_value(Tensor::ones(&[2]));
        assert_eq!(p.to_tensor().data(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn set_value_rejects_shape_change() {
        let p = Var::param(Tensor::zeros(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn constant_only_graph_skips_backward() {
        let a = Var::constant(Tensor::ones(&[2]));
        let b = a.scale(2.0);
        assert!(!b.requires_grad());
        b.sum_to_scalar(); // no panic, no grads anywhere
    }

    #[test]
    fn backward_with_seed_weights_gradient() {
        let mut rng = Rng::seed_from(1);
        let p = Var::param(Tensor::randn(&[4], &mut rng));
        let y = p.scale(2.0);
        let seed = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.5], &[4]).unwrap();
        y.backward_with_seed(&seed);
        assert_eq!(p.grad().unwrap().data(), &[2.0, 0.0, -2.0, 1.0]);
    }
}
