//! Dispatcher-mode invariance for the spike-sparsity execution path.
//!
//! The density-adaptive dispatcher is a **performance knob, never a
//! semantic one**: whatever `TTSNN_SPARSE_MODE` (or the per-model
//! override) says — route everything sparse, route nothing sparse, or
//! decide per site from measured density — the logits must be
//! bit-identical. This suite pins that over VGG9 and ResNet20, on the
//! f32 and int8 planes, with spiking inputs at densities on both sides
//! of the routing threshold plus analog (unpackable) inputs, in both
//! `InferStats` modes. CI re-runs it under `TTSNN_NUM_THREADS=2` and
//! `8`, extending the invariance across the thread-count matrix.

use ttsnn_snn::quant::QuantConfig;
use ttsnn_snn::{ConvPolicy, InferForward, InferStats, ResNetSnn, SpikingModel, VggSnn};
use ttsnn_tensor::spike::SparseMode;
use ttsnn_tensor::{Rng, Tensor};
use ttsnn_testutil::{resnet20_tiny, vgg9_tiny};

const T: usize = 3;

/// `n` binary `(C, H, W)` frames with roughly `density` ones.
fn spike_frames(c: usize, hw: usize, n: usize, density: f32, seed: u64) -> Vec<Tensor> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|_| {
            let data =
                (0..c * hw * hw).map(|_| if rng.uniform() < density { 1.0 } else { 0.0 }).collect();
            Tensor::from_vec(data, &[c, hw, hw]).unwrap()
        })
        .collect()
}

/// `n` analog frames (almost surely unpackable — the dense fallback path).
fn analog_frames(c: usize, hw: usize, n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = Rng::seed_from(seed);
    (0..n).map(|_| Tensor::rand_uniform(&[c, hw, hw], 0.0, 1.0, &mut rng)).collect()
}

/// Per-timestep logits for a batch built from `frames`, under the given
/// stats mode (the input is repeated across timesteps, like static data).
fn batch_logits(
    model: &mut (impl InferForward + ?Sized),
    frames: &[Tensor],
    stats: InferStats,
) -> Vec<Tensor> {
    let [c, h, w] = [frames[0].shape()[0], frames[0].shape()[1], frames[0].shape()[2]];
    let mut data = Vec::new();
    for f in frames {
        data.extend_from_slice(f.data());
    }
    let input = Tensor::from_vec(data, &[frames.len(), c, h, w]).unwrap();
    model.set_infer_stats(stats);
    model.reset_state();
    let out = (0..T).map(|t| model.forward_timestep_tensor(&input, t).unwrap()).collect();
    model.reset_state();
    out
}

/// Asserts Off / Auto / Force produce bit-identical logits on `frames`.
fn assert_mode_invariant<M, F>(model: &mut M, set_mode: F, frames: &[Tensor], label: &str)
where
    M: InferForward + ?Sized,
    F: Fn(&mut M, Option<SparseMode>),
{
    for stats in [InferStats::PerSample, InferStats::Batch] {
        set_mode(model, Some(SparseMode::Off));
        let reference = batch_logits(model, frames, stats);
        for mode in [SparseMode::Auto, SparseMode::Force] {
            set_mode(model, Some(mode));
            let got = batch_logits(model, frames, stats);
            for (t, (a, b)) in reference.iter().zip(got.iter()).enumerate() {
                assert_eq!(
                    a, b,
                    "{label}: {mode:?} logits differ from Off at t={t} under {stats:?}"
                );
            }
        }
        set_mode(model, None);
    }
}

#[test]
fn vgg_f32_dispatch_modes_are_bit_identical() {
    let mut rng = Rng::seed_from(11);
    let cfg = vgg9_tiny();
    let mut net = VggSnn::new(cfg, &ConvPolicy::Baseline, &mut rng);
    // Densities straddling SPARSE_DENSITY_THRESHOLD, plus analog input.
    for (i, density) in [0.05f32, 0.6].iter().enumerate() {
        let frames = spike_frames(3, 8, 3, *density, 100 + i as u64);
        assert_mode_invariant(&mut net, VggSnn::set_sparse_mode, &frames, "vgg f32 spikes");
    }
    let analog = analog_frames(3, 8, 3, 102);
    assert_mode_invariant(&mut net, VggSnn::set_sparse_mode, &analog, "vgg f32 analog");
}

#[test]
fn resnet_f32_dispatch_modes_are_bit_identical() {
    let mut rng = Rng::seed_from(12);
    let cfg = resnet20_tiny(5);
    let mut net = ResNetSnn::new(cfg, &ConvPolicy::Baseline, &mut rng);
    for (i, density) in [0.05f32, 0.6].iter().enumerate() {
        let frames = spike_frames(3, 8, 3, *density, 200 + i as u64);
        assert_mode_invariant(&mut net, ResNetSnn::set_sparse_mode, &frames, "resnet f32 spikes");
    }
    let analog = analog_frames(3, 8, 3, 202);
    assert_mode_invariant(&mut net, ResNetSnn::set_sparse_mode, &analog, "resnet f32 analog");
}

#[test]
fn vgg_int8_dispatch_modes_are_bit_identical() {
    let mut rng = Rng::seed_from(13);
    let cfg = vgg9_tiny();
    let mut net = VggSnn::new(cfg, &ConvPolicy::Baseline, &mut rng);
    let frames = spike_frames(3, 8, 3, 0.15, 300);
    let calib = net.calibrate(&frames, T).unwrap();
    net.quantize(&calib, &QuantConfig::default()).unwrap();
    assert_mode_invariant(&mut net, VggSnn::set_sparse_mode, &frames, "vgg int8 spikes");
    let analog = analog_frames(3, 8, 3, 301);
    assert_mode_invariant(&mut net, VggSnn::set_sparse_mode, &analog, "vgg int8 analog");
}

#[test]
fn resnet_int8_dispatch_modes_are_bit_identical() {
    let mut rng = Rng::seed_from(14);
    let cfg = resnet20_tiny(5);
    let mut net = ResNetSnn::new(cfg, &ConvPolicy::Baseline, &mut rng);
    let frames = spike_frames(3, 8, 3, 0.15, 400);
    let calib = net.calibrate(&frames, T).unwrap();
    net.quantize(&calib, &QuantConfig::default()).unwrap();
    assert_mode_invariant(&mut net, ResNetSnn::set_sparse_mode, &frames, "resnet int8 spikes");
}

#[test]
fn layer_spike_densities_are_measured_and_bounded() {
    let mut rng = Rng::seed_from(15);
    let cfg = vgg9_tiny();
    let mut net = VggSnn::new(cfg, &ConvPolicy::Baseline, &mut rng);
    assert!(
        net.layer_spike_densities().iter().all(|&d| d == 0.0),
        "unrun layers must report density 0.0"
    );
    let frames = spike_frames(3, 8, 4, 0.3, 500);
    let _ = batch_logits(&mut net, &frames, InferStats::PerSample);
    let densities = net.layer_spike_densities();
    assert_eq!(densities.len(), 6, "one density per LIF layer in network order");
    assert!(densities.iter().all(|&d| (0.0..=1.0).contains(&d)), "densities must be in [0, 1]");
    assert!(densities.iter().any(|&d| d > 0.0), "an untrained net still fires somewhere");
    let mean = net.mean_spike_activity().expect("activity tracked after a forward pass");
    assert!((0.0..=1.0).contains(&mean));
}

#[test]
fn sparse_mode_override_defaults_to_env_resolution() {
    let mut rng = Rng::seed_from(16);
    let mut net = VggSnn::new(vgg9_tiny(), &ConvPolicy::Baseline, &mut rng);
    // No override: resolves from the process environment.
    assert_eq!(net.sparse_dispatch_mode(), ttsnn_tensor::spike::sparse_mode());
    net.set_sparse_mode(Some(SparseMode::Force));
    assert_eq!(net.sparse_dispatch_mode(), SparseMode::Force);
    net.set_sparse_mode(None);
    assert_eq!(net.sparse_dispatch_mode(), ttsnn_tensor::spike::sparse_mode());
}
