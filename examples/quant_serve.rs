//! Quantized-plane tour: calibrate → freeze to int8 → serve, on both the
//! single engine and the replica cluster, with a drift report against the
//! f32 plan frozen from the same checkpoint.
//!
//! ```sh
//! TTSNN_NUM_REPLICAS=3 cargo run --release --example quant_serve
//! ```

use std::time::Duration;

use tt_snn::core::TtMode;
use tt_snn::infer::{
    plan_drift, ArchSpec, BatchPolicy, Cluster, ClusterConfig, Engine, EngineConfig, QuantSpec,
};
use tt_snn::snn::quant::QuantConfig;
use tt_snn::snn::{checkpoint, ConvPolicy, SpikingModel, VggConfig, VggSnn};
use tt_snn::tensor::{Rng, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(7);
    let timesteps = 2usize;

    // Train-side hand-off: one checkpoint (here: untrained weights; in a
    // real pipeline, whatever `train`/`ShardedTrainer` produced).
    let cfg = VggConfig::vgg9(3, 4, (8, 8), 16);
    let policy = ConvPolicy::tt(TtMode::Ptt);
    let model = VggSnn::new(cfg.clone(), &policy, &mut rng);
    let mut ckpt = Vec::new();
    checkpoint::save_params(&model.params(), &mut ckpt)?;

    let engine_cfg = EngineConfig::new(ArchSpec::Vgg(cfg), policy, timesteps)
        .merged()
        .with_batching(BatchPolicy { max_batch: 4, max_wait: Duration::from_millis(2) });

    // Step 1+2: calibration frames fix the static activation scales; the
    // engine loads the checkpoint, merges TT cores back to dense, runs
    // the calibration pass, and freezes every conv + the classifier to
    // int8 (per-output-channel scales, exact i32 accumulators).
    let calibration: Vec<Tensor> =
        (0..4).map(|_| Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut rng)).collect();
    let int8 = Engine::load_quantized(
        engine_cfg.clone(),
        QuantSpec::new(calibration.clone()).with_config(QuantConfig::default()),
        ckpt.as_slice(),
    )?;
    let qi = int8.info().quant.clone().expect("quantized plan");
    println!(
        "frozen {}: {} convs -> int8, {} bytes (was {} as f32, {:.2}x smaller)",
        int8.info().model,
        qi.quantized_convs,
        qi.int8_bytes,
        qi.f32_bytes,
        qi.f32_bytes as f64 / qi.int8_bytes as f64
    );

    // Step 3: serve. Same Session/batching machinery as the float plane;
    // integer accumulation makes logits bit-identical across thread
    // counts and batch compositions.
    let f32_engine = Engine::load(engine_cfg.clone(), ckpt.as_slice())?;
    let inputs: Vec<Tensor> =
        (0..8).map(|_| Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut rng)).collect();
    let logits = int8.session().infer(inputs[0].clone())?;
    println!("int8 logits[0]: {:?}", &logits.data()[..logits.len().min(4)]);

    // What did quantization cost? Drift of the int8 plan vs the f32 plan.
    let drift = plan_drift(&f32_engine.session(), &int8.session(), &inputs)?;
    println!(
        "drift vs f32 plan: {:.0}% argmax agreement, mean |dlogit| {:.4}, max {:.4}",
        drift.agreement * 100.0,
        drift.mean_abs_err,
        drift.max_abs_err
    );

    // The same spec freezes a whole cluster: the int8 weights are
    // quantized once on replica 0 and Arc-shared — N replicas, one copy.
    let cluster = Cluster::load_quantized(
        ClusterConfig::new(engine_cfg).with_queue_capacity(64),
        QuantSpec::new(calibration),
        ckpt.as_slice(),
    )?;
    let session = cluster.session();
    let tickets: Vec<_> = inputs.iter().map(|x| session.submit(x.clone())).collect();
    let mut agree = 0usize;
    for (ticket, input) in tickets.into_iter().zip(&inputs) {
        let y = ticket?.wait()?;
        // Bit-identical to the single engine, whatever TTSNN_NUM_REPLICAS.
        if y == int8.session().infer(input.clone())? {
            agree += 1;
        }
    }
    println!(
        "cluster ({} replicas): {agree}/{} requests bit-identical to the single engine",
        cluster.replicas(),
        inputs.len()
    );
    Ok(())
}
