//! # ttsnn-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! TT-SNN paper. Each experiment is a binary (`cargo run -p ttsnn-bench
//! --release --bin <name>`):
//!
//! | binary  | reproduces |
//! |---------|------------|
//! | `table1` | Table I — hardware implementation parameters |
//! | `table2` | Table II — accuracy / training time / params / FLOPs for baseline, STT, PTT, HTT on CIFAR10-like, CIFAR100-like and N-Caltech101-like workloads |
//! | `table3` | Table III — PTT plugged into tdBN / TEBN / TET / NDA baselines |
//! | `table4` | Table IV — HTT full/half placement ablation |
//! | `fig4`   | Fig. 4 — training energy on the existing vs proposed accelerator |
//! | `fig5`   | Fig. 5 — accuracy and training time vs timestep |
//!
//! Criterion micro-benches (`cargo bench -p ttsnn-bench`) cover the
//! kernel-level claims: per-batch training-step time by method
//! (`train_step`), dense-vs-TT convolution forward (`conv_kernels`),
//! merge-back cost (`merge`), rank sensitivity (`rank_sweep`), timestep
//! scaling (`timestep_sweep`) and the accelerator model itself
//! (`energy_model`).
//!
//! The [`harness`] module holds the shared measured-experiment plumbing;
//! binaries are thin wrappers.

#![warn(missing_docs)]

pub mod harness;

pub use harness::{
    measured_policies, print_measured_table, train_and_measure, ExperimentConfig, MeasuredRow,
};
