//! # ttsnn-obs
//!
//! Lock-light request-lifecycle tracing for the serving plane: the
//! measurement substrate under `GET /trace?id=` and the per-stage
//! latency families on `/metrics`.
//!
//! ## Model
//!
//! Every served request carries a **trace id** (a nonzero `u64`, minted
//! by [`next_trace_id`] at wire decode). Each layer of the stack marks
//! the segment it owns with a **span** — `admit`, `queue_wait`,
//! `batch_form`, `execute` (with per-timestep children), `serialize`,
//! `write` — via [`record_span`], and kernel regions under `execute`
//! appear automatically through the [`region`] guard plus the
//! [`TraceContext`] the executing replica installs for the batch.
//!
//! ## Design
//!
//! - **Per-thread ring buffers.** Events land in the recording thread's
//!   own fixed-capacity ring (capacity `TTSNN_TRACE_RING`, default
//!   4096), registered once in a global registry. The hot path is one
//!   uncontended mutex lock and one `Event` copy — no allocation, no
//!   shared cache line. Readers ([`trace_events`]) pay the scan cost at
//!   debug-endpoint time instead.
//! - **Monotonic timestamps.** All times are nanoseconds since a
//!   process-global epoch ([`now_ns`]), so spans from different threads
//!   order correctly.
//! - **Cheap when off.** `TTSNN_TRACE=off` (or `0`/`false`) turns every
//!   record call into an atomic load and an early return; the
//!   [`region`] guard additionally requires a nonempty thread-local
//!   trace context before it even reads the clock, so untraced work
//!   (training, benches) never pays for instrumentation.
//! - **Bounded everything.** Event rings overwrite their oldest entry;
//!   the flight recorder keeps the last [`RECENT_COMPLETIONS`]
//!   completions and at most [`SLOW_EXEMPLARS`] SLO-violating slow
//!   traces (threshold `TTSNN_TRACE_SLOW_MS`, default 250). A rejected
//!   or abandoned request can therefore never leak a slot.
//!
//! ## Telemetry plane
//!
//! On top of per-request tracing, the crate carries the service-level
//! building blocks the serving plane's continuous telemetry sampler is
//! built from: [`timeseries`] (bounded history rings with rate and
//! quantile derivation), [`slo`] (multi-window burn-rate objectives),
//! and [`watchdog`] (the per-plan health state machine). They are pure
//! data structures — the sampler thread that feeds them lives in
//! `ttsnn_serve::telemetry`, which also owns the `/debug/slo` and
//! `/debug/timeline` views. Their alerts land in the flight recorder's
//! bounded service-event ring ([`record_service_event`]).
//!
//! The crate is std-only and dependency-free so the lowest layer
//! (`ttsnn_tensor`'s kernel runtime) can hook into it.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

mod render;
pub mod slo;
pub mod timeseries;
pub mod watchdog;

pub use render::{chrome_trace_json, debug_requests_text, sparkline};

// ---------------------------------------------------------------------------
// Clock, gate, ids
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-global trace epoch (the first call).
/// Monotonic across threads, so spans recorded by different threads
/// order and nest correctly.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

const MODE_UNSET: u8 = 0;
const MODE_ON: u8 = 1;
const MODE_OFF: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// Whether tracing is on. Resolved once from `TTSNN_TRACE` (default on;
/// `off`, `0`, `false`, case-insensitive, disable) and overridable at
/// runtime with [`set_enabled`]. One relaxed atomic load on the hot
/// path.
pub fn enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_ON => true,
        MODE_OFF => false,
        _ => {
            let off = std::env::var("TTSNN_TRACE").is_ok_and(|v| {
                matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "false")
            });
            MODE.store(if off { MODE_OFF } else { MODE_ON }, Ordering::Relaxed);
            !off
        }
    }
}

/// Overrides the `TTSNN_TRACE` gate at runtime (used by the
/// `obs_overhead` bench to measure both modes in one process, and by
/// tests). Takes effect immediately on all threads.
pub fn set_enabled(on: bool) {
    MODE.store(if on { MODE_ON } else { MODE_OFF }, Ordering::Relaxed);
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Mints a process-unique, nonzero trace id. Trace id `0` universally
/// means "untraced" and is never returned.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// Per-thread event-ring capacity: `TTSNN_TRACE_RING`, default 4096,
/// clamped to `[64, 1 << 20]`.
pub fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("TTSNN_TRACE_RING")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(4096, |n| n.clamp(64, 1 << 20))
    })
}

/// Slow-exemplar threshold in milliseconds: `TTSNN_TRACE_SLOW_MS`,
/// default 250. A completed request at least this slow end-to-end is
/// assembled eagerly and pinned in the flight recorder's slow reservoir.
pub fn slow_threshold_ms() -> u64 {
    static MS: OnceLock<u64> = OnceLock::new();
    *MS.get_or_init(|| {
        std::env::var("TTSNN_TRACE_SLOW_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(250)
    })
}

// ---------------------------------------------------------------------------
// Events and per-thread rings
// ---------------------------------------------------------------------------

/// Shape of one trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: `start_ns` .. `start_ns + dur_ns`.
    Span,
    /// A point event at `start_ns` (`dur_ns` is 0).
    Instant,
}

/// One recorded trace entry — `Copy`, fixed-size, allocation-free. The
/// `a`/`b` payloads are span-specific (timestep index, MAC count,
/// `f64::to_bits` spike density, rejection reason…); the Chrome-trace
/// renderer names them per span.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The request's trace id (nonzero).
    pub trace: u64,
    /// Span name (`queue_wait`, `execute`, `timestep`, `gemm`, …).
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Start time, ns since the trace epoch.
    pub start_ns: u64,
    /// Duration in ns (0 for instants).
    pub dur_ns: u64,
    /// First span-specific payload.
    pub a: u64,
    /// Second span-specific payload.
    pub b: u64,
}

/// A fixed-capacity overwrite-oldest event buffer.
struct Ring {
    buf: Vec<Event>,
    head: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring { buf: Vec::with_capacity(capacity), head: 0 }
    }

    fn push(&mut self, e: Event) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
        }
        self.head = (self.head + 1) % self.buf.capacity().max(1);
    }
}

/// Every live thread's ring, for reader-side scans.
static REGISTRY: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

fn push_event(e: Event) {
    LOCAL_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let arc = Arc::new(Mutex::new(Ring::new(ring_capacity())));
            REGISTRY.lock().unwrap_or_else(|p| p.into_inner()).push(Arc::clone(&arc));
            arc
        });
        arc.lock().unwrap_or_else(|p| p.into_inner()).push(e);
    });
}

/// Records a completed span for `trace`. No-op when tracing is off or
/// `trace` is 0, so call sites can record unconditionally.
pub fn record_span(trace: u64, name: &'static str, start_ns: u64, dur_ns: u64, a: u64, b: u64) {
    if trace == 0 || !enabled() {
        return;
    }
    push_event(Event { trace, name, kind: EventKind::Span, start_ns, dur_ns, a, b });
}

/// Records a point event for `trace`. No-op when tracing is off or
/// `trace` is 0.
pub fn record_instant(trace: u64, name: &'static str, at_ns: u64, a: u64, b: u64) {
    if trace == 0 || !enabled() {
        return;
    }
    push_event(Event { trace, name, kind: EventKind::Instant, start_ns: at_ns, dur_ns: 0, a, b });
}

/// All events recorded for `trace`, sorted by start time. Scans every
/// thread's ring; if the ring entries were already overwritten but the
/// request was pinned as a slow exemplar, the pinned copy is returned
/// instead (whichever set is larger wins).
pub fn trace_events(trace: u64) -> Vec<Event> {
    let mut out = Vec::new();
    if trace != 0 {
        let registry = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        for ring in registry.iter() {
            let ring = ring.lock().unwrap_or_else(|p| p.into_inner());
            out.extend(ring.buf.iter().filter(|e| e.trace == trace).copied());
        }
        drop(registry);
        let pinned = slow_exemplar_events(trace);
        if pinned.len() > out.len() {
            out = pinned;
        }
    }
    out.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
    out
}

// ---------------------------------------------------------------------------
// Thread-local trace context + kernel region guards
// ---------------------------------------------------------------------------

thread_local! {
    static CONTEXT: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Installs the executing batch's trace ids as this thread's trace
/// context for the guard's lifetime: every [`region`] entered on the
/// thread while the context is live emits one span per context trace.
/// Contexts nest (an inner `enter` extends the set and restores it on
/// drop). Zero trace ids are skipped; entering with none is free.
pub struct TraceContext {
    prev_len: usize,
}

impl TraceContext {
    /// Enters a context covering `traces` (zeros filtered out).
    pub fn enter(traces: &[u64]) -> TraceContext {
        CONTEXT.with(|c| {
            let mut v = c.borrow_mut();
            let prev_len = v.len();
            if enabled() {
                v.extend(traces.iter().copied().filter(|&t| t != 0));
            }
            TraceContext { prev_len }
        })
    }
}

impl Drop for TraceContext {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.borrow_mut().truncate(self.prev_len));
    }
}

/// A kernel-region span guard: times from construction to drop and, at
/// drop, records one `name` span per trace in the thread's
/// [`TraceContext`]. When tracing is off or no context is installed the
/// guard is inert — it never even reads the clock — so kernels can hook
/// unconditionally.
pub struct Region {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

/// Opens a kernel-region guard (see [`Region`]).
pub fn region(name: &'static str) -> Region {
    let active = CONTEXT.with(|c| !c.borrow().is_empty()) && enabled();
    Region { name, start_ns: if active { now_ns() } else { 0 }, active }
}

impl Drop for Region {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        CONTEXT.with(|c| {
            for &trace in c.borrow().iter() {
                push_event(Event {
                    trace,
                    name: self.name,
                    kind: EventKind::Span,
                    start_ns: self.start_ns,
                    dur_ns,
                    a: 0,
                    b: 0,
                });
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Per-stage latency histograms
// ---------------------------------------------------------------------------

/// The request-lifecycle stages with a latency histogram on `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Wire decode + admission (submit call) on the ingress thread.
    Admit,
    /// Sitting in the scheduler queue, submission to pop.
    QueueWait,
    /// Popped into an open batch, waiting for the batch to close.
    BatchForm,
    /// The batch's forward pass, timestep loop included.
    Execute,
    /// Encoding the response frame.
    Serialize,
    /// Writing the response bytes to the socket.
    Write,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 6;

    /// Every stage, lifecycle order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Admit,
        Stage::QueueWait,
        Stage::BatchForm,
        Stage::Execute,
        Stage::Serialize,
        Stage::Write,
    ];

    /// Stable label for the `stage` Prometheus label and span names.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admit => "admit",
            Stage::QueueWait => "queue_wait",
            Stage::BatchForm => "batch_form",
            Stage::Execute => "execute",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Admit => 0,
            Stage::QueueWait => 1,
            Stage::BatchForm => 2,
            Stage::Execute => 3,
            Stage::Serialize => 4,
            Stage::Write => 5,
        }
    }
}

/// Bucket edges (seconds) of the per-stage latency histograms — wide
/// enough to split a 25 µs serialize from a 100 ms queue wait.
pub const STAGE_EDGES_SECS: [f64; 12] =
    [25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 100e-3, 1.0];

struct StageHist {
    /// One counter per edge plus the `+Inf` overflow bucket
    /// (non-cumulative; readers accumulate).
    buckets: Vec<AtomicU64>,
    sum_ns: AtomicU64,
}

fn stage_hists() -> &'static [StageHist] {
    static HISTS: OnceLock<Vec<StageHist>> = OnceLock::new();
    HISTS.get_or_init(|| {
        Stage::ALL
            .iter()
            .map(|_| StageHist {
                buckets: (0..=STAGE_EDGES_SECS.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_ns: AtomicU64::new(0),
            })
            .collect()
    })
}

/// Adds one observation to a stage's global latency histogram. No-op
/// when tracing is off.
pub fn record_stage(stage: Stage, dur_ns: u64) {
    if !enabled() {
        return;
    }
    let h = &stage_hists()[stage.index()];
    let secs = dur_ns as f64 / 1e9;
    let idx = STAGE_EDGES_SECS.iter().position(|&e| secs <= e).unwrap_or(STAGE_EDGES_SECS.len());
    h.buckets[idx].fetch_add(1, Ordering::Relaxed);
    h.sum_ns.fetch_add(dur_ns, Ordering::Relaxed);
}

/// One stage's histogram, snapshotted for rendering.
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    /// Stage label (`queue_wait`, …).
    pub stage: &'static str,
    /// `(upper_edge_seconds, count)` pairs, **non-cumulative**, ending
    /// with the `+Inf` bucket (`f64::INFINITY`).
    pub buckets: Vec<(f64, u64)>,
    /// Sum of all observations, seconds.
    pub sum_seconds: f64,
    /// Total observations.
    pub count: u64,
}

/// Snapshots every stage's latency histogram (lifecycle order).
pub fn stage_snapshot() -> Vec<StageSnapshot> {
    let hists = stage_hists();
    Stage::ALL
        .iter()
        .map(|s| {
            let h = &hists[s.index()];
            let mut buckets: Vec<(f64, u64)> = STAGE_EDGES_SECS
                .iter()
                .zip(&h.buckets)
                .map(|(&e, c)| (e, c.load(Ordering::Relaxed)))
                .collect();
            buckets
                .push((f64::INFINITY, h.buckets[STAGE_EDGES_SECS.len()].load(Ordering::Relaxed)));
            let count = buckets.iter().map(|&(_, c)| c).sum();
            StageSnapshot {
                stage: s.name(),
                buckets,
                sum_seconds: h.sum_ns.load(Ordering::Relaxed) as f64 / 1e9,
                count,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Flight recorder: recent completions + slow exemplars
// ---------------------------------------------------------------------------

/// Completions kept in the flight recorder's recent ring.
pub const RECENT_COMPLETIONS: usize = 256;

/// Maximum pinned SLO-violating slow traces.
pub const SLOW_EXEMPLARS: usize = 16;

/// Terminal record of one request, as listed by `GET /debug/requests`.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The request's trace id.
    pub trace: u64,
    /// Tenant the request was accounted against.
    pub tenant: u32,
    /// Terminal state (`ok`, `shape`, `rejected_saturated`, …).
    pub status: &'static str,
    /// End-to-end latency in ns (0 when the request never started, e.g.
    /// admission rejections).
    pub total_ns: u64,
    /// Completion time, ns since the trace epoch.
    pub end_ns: u64,
}

/// Service events kept in the flight recorder's event ring.
pub const SERVICE_EVENTS: usize = 64;

/// Alert severity of a [`ServiceEvent`], ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (health recovered, telemetry started).
    Info,
    /// Needs attention soon (slow-burn SLO violation, degraded plan).
    Warn,
    /// Needs attention now (fast burn, unhealthy plan).
    Page,
}

impl Severity {
    /// Stable lowercase label (`info` / `warn` / `page`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Page => "page",
        }
    }
}

/// A structured service-level event (SLO burn crossing, health
/// transition) emitted by the telemetry plane into the flight
/// recorder's bounded event ring.
#[derive(Debug, Clone)]
pub struct ServiceEvent {
    /// When it happened, ns since the trace epoch.
    pub at_ns: u64,
    /// How urgent.
    pub severity: Severity,
    /// What it concerns — a plan name, or `telemetry` for plane-level
    /// events.
    pub scope: String,
    /// Human-readable description.
    pub message: String,
}

struct SlowTrace {
    completion: Completion,
    events: Vec<Event>,
}

struct Recorder {
    recent: VecDeque<Completion>,
    slow: Vec<SlowTrace>,
    service: VecDeque<ServiceEvent>,
}

static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
    let mut guard = RECORDER.lock().unwrap_or_else(|p| p.into_inner());
    let rec = guard.get_or_insert_with(|| Recorder {
        recent: VecDeque::with_capacity(RECENT_COMPLETIONS),
        slow: Vec::new(),
        service: VecDeque::with_capacity(SERVICE_EVENTS),
    });
    f(rec)
}

/// Records a request's terminal state in the flight recorder. If its
/// end-to-end latency breaches `TTSNN_TRACE_SLOW_MS`, the full trace is
/// assembled eagerly and pinned in the bounded slow-exemplar reservoir
/// (the slowest [`SLOW_EXEMPLARS`] survive). No-op when tracing is off
/// or `trace` is 0.
pub fn record_completion(trace: u64, tenant: u32, status: &'static str, total_ns: u64) {
    if trace == 0 || !enabled() {
        return;
    }
    let end_ns = now_ns();
    let completion = Completion { trace, tenant, status, total_ns, end_ns };
    let slow = total_ns >= slow_threshold_ms().saturating_mul(1_000_000);
    let events = if slow { trace_events(trace) } else { Vec::new() };
    with_recorder(|rec| {
        if rec.recent.len() >= RECENT_COMPLETIONS {
            rec.recent.pop_front();
        }
        rec.recent.push_back(completion);
        if slow {
            if rec.slow.len() < SLOW_EXEMPLARS {
                rec.slow.push(SlowTrace { completion, events });
            } else if let Some(min) = rec
                .slow
                .iter_mut()
                .min_by_key(|s| s.completion.total_ns)
                .filter(|s| s.completion.total_ns < total_ns)
            {
                *min = SlowTrace { completion, events };
            }
        }
    });
}

/// The flight recorder's recent completions, newest first.
pub fn completions() -> Vec<Completion> {
    with_recorder(|rec| rec.recent.iter().rev().copied().collect())
}

/// The pinned slow exemplars (completion metadata only), slowest first.
pub fn slow_exemplars() -> Vec<Completion> {
    with_recorder(|rec| {
        let mut out: Vec<Completion> = rec.slow.iter().map(|s| s.completion).collect();
        out.sort_by_key(|c| std::cmp::Reverse(c.total_ns));
        out
    })
}

/// Records a structured service-level event in the flight recorder's
/// bounded ring ([`SERVICE_EVENTS`] kept, oldest evicted). Unlike the
/// request-tracing calls this is **not** gated on [`enabled`]: the
/// telemetry plane has its own on/off switch and its events should
/// survive `TTSNN_TRACE=off`.
pub fn record_service_event(severity: Severity, scope: &str, message: impl Into<String>) {
    let event = ServiceEvent {
        at_ns: now_ns(),
        severity,
        scope: scope.to_string(),
        message: message.into(),
    };
    with_recorder(|rec| {
        if rec.service.len() >= SERVICE_EVENTS {
            rec.service.pop_front();
        }
        rec.service.push_back(event);
    });
}

/// The flight recorder's service events, newest first.
pub fn service_events() -> Vec<ServiceEvent> {
    with_recorder(|rec| rec.service.iter().rev().cloned().collect())
}

fn slow_exemplar_events(trace: u64) -> Vec<Event> {
    with_recorder(|rec| {
        rec.slow
            .iter()
            .find(|s| s.completion.trace == trace)
            .map(|s| s.events.clone())
            .unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global trace state is process-wide; tests that flip the gate or
    /// assert on ring contents serialize through this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        g
    }

    #[test]
    fn spans_round_trip_through_the_ring() {
        let _g = locked();
        let trace = next_trace_id();
        let t0 = now_ns();
        record_span(trace, "queue_wait", t0, 1_000, 1, 2);
        record_instant(trace, "rejected", t0 + 2_000, 3, 4);
        let events = trace_events(trace);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "queue_wait");
        assert_eq!(events[0].dur_ns, 1_000);
        assert_eq!((events[0].a, events[0].b), (1, 2));
        assert_eq!(events[1].kind, EventKind::Instant);
    }

    #[test]
    fn trace_zero_and_disabled_record_nothing() {
        let _g = locked();
        record_span(0, "x", 0, 1, 0, 0);
        assert!(trace_events(0).is_empty());
        set_enabled(false);
        let trace = next_trace_id();
        record_span(trace, "x", 0, 1, 0, 0);
        record_completion(trace, 0, "ok", 1);
        set_enabled(true);
        assert!(trace_events(trace).is_empty());
        assert!(completions().iter().all(|c| c.trace != trace));
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let _g = locked();
        let trace = next_trace_id();
        let cap = ring_capacity();
        for i in 0..(cap + 10) as u64 {
            record_span(trace, "spin", i, 1, i, 0);
        }
        let events = trace_events(trace);
        assert!(events.len() <= cap);
        // The newest event survived; the oldest was overwritten.
        assert!(events.iter().any(|e| e.a == (cap as u64 + 9)));
        assert!(events.iter().all(|e| e.a >= 10));
    }

    #[test]
    fn regions_emit_one_span_per_context_trace() {
        let _g = locked();
        let (t1, t2) = (next_trace_id(), next_trace_id());
        {
            let _ctx = TraceContext::enter(&[t1, 0, t2]);
            let _r = region("gemm");
        }
        for t in [t1, t2] {
            let events = trace_events(t);
            assert_eq!(events.len(), 1, "trace {t} has its gemm span");
            assert_eq!(events[0].name, "gemm");
        }
        // Context restored: a later region records nothing new.
        let _r = region("gemm");
        drop(_r);
        assert_eq!(trace_events(t1).len(), 1);
    }

    #[test]
    fn completions_ring_is_bounded() {
        let _g = locked();
        let first = next_trace_id();
        for _ in 0..(RECENT_COMPLETIONS + 50) {
            record_completion(next_trace_id(), 7, "rejected_saturated", 0);
        }
        let recent = completions();
        assert_eq!(recent.len(), RECENT_COMPLETIONS);
        // Newest first, and the earliest entries were evicted.
        assert!(recent.iter().all(|c| c.trace > first));
        assert!(recent[0].trace > recent[recent.len() - 1].trace);
        assert!(slow_exemplars().len() <= SLOW_EXEMPLARS);
    }

    #[test]
    fn slow_requests_are_pinned_with_their_events() {
        let _g = locked();
        let trace = next_trace_id();
        let t0 = now_ns();
        record_span(trace, "execute", t0, 5_000, 0, 0);
        let slow_ns = slow_threshold_ms() * 1_000_000 + 1;
        record_completion(trace, 3, "ok", slow_ns);
        assert!(slow_exemplars().iter().any(|c| c.trace == trace));
        // Even with the ring overwritten, the pinned copy answers.
        let filler = next_trace_id();
        for i in 0..(ring_capacity() as u64 + 8) {
            record_span(filler, "spin", i, 1, 0, 0);
        }
        let events = trace_events(trace);
        assert!(events.iter().any(|e| e.name == "execute"));
    }

    #[test]
    fn service_events_ring_is_bounded_and_ungated() {
        let _g = locked();
        set_enabled(false);
        for i in 0..(SERVICE_EVENTS + 20) {
            record_service_event(Severity::Warn, "svc-ring-test", format!("event {i}"));
        }
        set_enabled(true);
        let events = service_events();
        assert_eq!(events.len(), SERVICE_EVENTS);
        // Newest first, oldest evicted — and recorded despite the trace
        // gate being off.
        let ours: Vec<&ServiceEvent> =
            events.iter().filter(|e| e.scope == "svc-ring-test").collect();
        assert!(!ours.is_empty());
        assert!(ours[0].message.contains(&format!("event {}", SERVICE_EVENTS + 19)));
        assert!(Severity::Page > Severity::Warn && Severity::Warn > Severity::Info);
    }

    #[test]
    fn stage_histograms_bucket_cumulatively_to_count() {
        let _g = locked();
        record_stage(Stage::Serialize, 30_000); // 30 µs
        record_stage(Stage::Serialize, 2_000_000_000); // 2 s -> +Inf
        let snap = stage_snapshot();
        let ser = snap.iter().find(|s| s.stage == "serialize").unwrap();
        assert_eq!(ser.buckets.last().map(|&(e, _)| e), Some(f64::INFINITY));
        let total: u64 = ser.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, ser.count);
        assert!(ser.count >= 2);
        assert!(ser.sum_seconds > 2.0);
    }
}
