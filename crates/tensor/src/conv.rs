//! 2-D convolution kernels (forward, input gradient, weight gradient) via
//! im2col / col2im, batch-parallel through [`crate::runtime`].
//!
//! All functions operate on NCHW activations `(B, C, H, W)` and OIHW weights
//! `(O, I, Kh, Kw)`. Asymmetric kernels (3×1, 1×3, 1×1) — the shapes the TT
//! cores of the paper use — are fully supported; padding is specified per
//! axis so that, e.g., a 3×1 core pads only vertically.
//!
//! Parallelization strategy: samples are independent, so the batch
//! dimension is split across the runtime's workers, each unfolding into its
//! own per-thread scratch arena buffer ([`crate::runtime::with_scratch`]:
//! at most one im2col allocation per worker per region, and none at all on
//! the calling thread once its arena is warm) and running a serial GEMM
//! per sample.
//! Single-sample calls fall through to the row-parallel GEMM instead, so
//! both ends of the batch-size spectrum use all cores. Every output element
//! is computed by exactly one thread in a fixed order — results are
//! bit-identical across thread counts.

use crate::error::ShapeError;
use crate::runtime::{self, with_scratch, Runtime};
use crate::tensor::Tensor;

/// Static geometry of a 2-D convolution: everything needed to derive output
/// sizes, FLOP counts and buffer sizes without touching data.
///
/// ```
/// use ttsnn_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 16, (32, 32), (3, 3), (1, 1), (1, 1));
/// assert_eq!(g.out_hw(), (32, 32));
/// assert_eq!(g.macs(), 16 * 32 * 32 * 3 * 3 * 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Input spatial size `(H, W)`.
    pub in_hw: (usize, usize),
    /// Kernel size `(Kh, Kw)`.
    pub kernel: (usize, usize),
    /// Stride `(Sh, Sw)`.
    pub stride: (usize, usize),
    /// Zero padding `(Ph, Pw)` applied symmetrically per axis.
    pub padding: (usize, usize),
}

impl Conv2dGeometry {
    /// Creates a geometry descriptor.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_hw: (usize, usize),
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Self {
        Self { in_channels, out_channels, in_hw, kernel, stride, padding }
    }

    /// Output spatial size `(Oh, Ow)`.
    pub fn out_hw(&self) -> (usize, usize) {
        let (h, w) = self.in_hw;
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        ((h + 2 * ph - kh) / sh + 1, (w + 2 * pw - kw) / sw + 1)
    }

    /// Multiply–accumulate count for one forward pass over one sample.
    pub fn macs(&self) -> usize {
        let (oh, ow) = self.out_hw();
        self.out_channels * oh * ow * self.in_channels * self.kernel.0 * self.kernel.1
    }

    /// Trainable parameter count (no bias, as in the paper's conv layers).
    pub fn params(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel.0 * self.kernel.1
    }
}

pub(crate) fn check_input(
    x: &Tensor,
    g: &Conv2dGeometry,
) -> Result<(usize, usize, usize), ShapeError> {
    if x.ndim() != 4 {
        return Err(ShapeError::new(format!(
            "conv2d: expected 4-D NCHW input, got {:?}",
            x.shape()
        )));
    }
    let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    if c != g.in_channels || (h, w) != g.in_hw {
        return Err(ShapeError::new(format!(
            "conv2d: input {:?} does not match geometry (C={}, HW={:?})",
            x.shape(),
            g.in_channels,
            g.in_hw
        )));
    }
    let (oh, ow) = g.out_hw();
    Ok((b, oh, ow))
}

fn check_weight(weight: &Tensor, g: &Conv2dGeometry) -> Result<(), ShapeError> {
    let expect = [g.out_channels, g.in_channels, g.kernel.0, g.kernel.1];
    if weight.shape() != expect {
        return Err(ShapeError::new(format!(
            "conv2d: weight {:?} does not match geometry {:?}",
            weight.shape(),
            expect
        )));
    }
    Ok(())
}

/// Unfolds one sample `(C, H, W)` into the im2col matrix
/// `(C*Kh*Kw, Oh*Ow)`, stored row-major into `cols`. Generic over the
/// element type so the float kernels and the int8 quantized kernels
/// ([`crate::qkernels`]) share one unfolding; `zero` is the padding value.
pub(crate) fn im2col_sample_t<T: Copy>(x: &[T], g: &Conv2dGeometry, cols: &mut [T], zero: T) {
    let (h, w) = g.in_hw;
    let (kh, kw) = g.kernel;
    let (sh, sw) = g.stride;
    let (ph, pw) = g.padding;
    let (oh, ow) = g.out_hw();
    let ospatial = oh * ow;
    for c in 0..g.in_channels {
        let plane = &x[c * h * w..(c + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (c * kh + ki) * kw + kj;
                let dst = &mut cols[row * ospatial..(row + 1) * ospatial];
                for oi in 0..oh {
                    let src_i = (oi * sh + ki) as isize - ph as isize;
                    if src_i < 0 || src_i >= h as isize {
                        dst[oi * ow..(oi + 1) * ow].fill(zero);
                        continue;
                    }
                    let src_row = &plane[src_i as usize * w..(src_i as usize + 1) * w];
                    for oj in 0..ow {
                        let src_j = (oj * sw + kj) as isize - pw as isize;
                        dst[oi * ow + oj] = if src_j < 0 || src_j >= w as isize {
                            zero
                        } else {
                            src_row[src_j as usize]
                        };
                    }
                }
            }
        }
    }
}

/// [`im2col_sample_t`] for `f32` activations.
fn im2col_sample(x: &[f32], g: &Conv2dGeometry, cols: &mut [f32]) {
    im2col_sample_t(x, g, cols, 0.0);
}

/// Folds an im2col matrix `(C*Kh*Kw, Oh*Ow)` back into a sample gradient
/// `(C, H, W)`, *accumulating* overlapping contributions (the adjoint of
/// [`im2col_sample`]).
fn col2im_sample(cols: &[f32], g: &Conv2dGeometry, x_grad: &mut [f32]) {
    let (h, w) = g.in_hw;
    let (kh, kw) = g.kernel;
    let (sh, sw) = g.stride;
    let (ph, pw) = g.padding;
    let (oh, ow) = g.out_hw();
    let ospatial = oh * ow;
    for c in 0..g.in_channels {
        let plane = &mut x_grad[c * h * w..(c + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (c * kh + ki) * kw + kj;
                let src = &cols[row * ospatial..(row + 1) * ospatial];
                for oi in 0..oh {
                    let dst_i = (oi * sh + ki) as isize - ph as isize;
                    if dst_i < 0 || dst_i >= h as isize {
                        continue;
                    }
                    for oj in 0..ow {
                        let dst_j = (oj * sw + kj) as isize - pw as isize;
                        if dst_j >= 0 && dst_j < w as isize {
                            plane[dst_i as usize * w + dst_j as usize] += src[oi * ow + oj];
                        }
                    }
                }
            }
        }
    }
}

/// Convolution forward pass: `y = x (*) weight`.
///
/// Input `(B, C, H, W)`, weight `(O, C, Kh, Kw)`, output `(B, O, Oh, Ow)`.
///
/// # Errors
///
/// Returns [`ShapeError`] if the input or weight does not match `g`.
pub fn conv2d(x: &Tensor, weight: &Tensor, g: &Conv2dGeometry) -> Result<Tensor, ShapeError> {
    conv2d_with(Runtime::global(), x, weight, g)
}

/// [`conv2d`] on an explicit [`Runtime`] (tests pin thread counts with
/// this; production code uses the global runtime wrapper).
///
/// # Errors
///
/// Returns [`ShapeError`] if the input or weight does not match `g`.
pub fn conv2d_with(
    rt: &Runtime,
    x: &Tensor,
    weight: &Tensor,
    g: &Conv2dGeometry,
) -> Result<Tensor, ShapeError> {
    let _region = ttsnn_obs::region("conv2d");
    let (b, oh, ow) = check_input(x, g)?;
    check_weight(weight, g)?;
    let k = g.in_channels * g.kernel.0 * g.kernel.1;
    let ospatial = oh * ow;
    let mut out = Tensor::zeros(&[b, g.out_channels, oh, ow]);
    let in_slab = g.in_channels * g.in_hw.0 * g.in_hw.1;
    let out_slab = g.out_channels * ospatial;
    if b == 1 {
        // One sample: parallelize inside the GEMM over output rows.
        with_scratch(k * ospatial, |cols| {
            im2col_sample(&x.data()[..in_slab], g, cols);
            runtime::gemm(rt, weight.data(), cols, out.data_mut(), g.out_channels, k, ospatial);
        });
        return Ok(out);
    }
    let serial = Runtime::new(1);
    let min_samples = samples_per_fork(2 * g.out_channels * k * ospatial);
    let (xd, wd) = (x.data(), weight.data());
    rt.parallel_over_slabs(out.data_mut(), out_slab, min_samples, |s, out_s| {
        with_scratch(k * ospatial, |cols| {
            im2col_sample(&xd[s * in_slab..(s + 1) * in_slab], g, cols);
            runtime::gemm(&serial, wd, cols, out_s, g.out_channels, k, ospatial);
        });
    });
    Ok(out)
}

/// Minimum samples per forked range so each worker gets enough
/// multiply-adds to amortize its spawn (same threshold as the GEMM row
/// split).
fn samples_per_fork(flops_per_sample: usize) -> usize {
    (runtime::PAR_THRESHOLD / flops_per_sample.max(1)).max(1)
}

/// Gradient of the convolution with respect to its **input**:
/// `dx = weight^T (*) dy` folded via col2im.
///
/// # Errors
///
/// Returns [`ShapeError`] if `y_grad` or `weight` does not match `g`.
pub fn conv2d_input_grad(
    y_grad: &Tensor,
    weight: &Tensor,
    g: &Conv2dGeometry,
) -> Result<Tensor, ShapeError> {
    conv2d_input_grad_with(Runtime::global(), y_grad, weight, g)
}

/// [`conv2d_input_grad`] on an explicit [`Runtime`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `y_grad` or `weight` does not match `g`.
pub fn conv2d_input_grad_with(
    rt: &Runtime,
    y_grad: &Tensor,
    weight: &Tensor,
    g: &Conv2dGeometry,
) -> Result<Tensor, ShapeError> {
    check_weight(weight, g)?;
    let (oh, ow) = g.out_hw();
    if y_grad.ndim() != 4
        || y_grad.shape()[1] != g.out_channels
        || (y_grad.shape()[2], y_grad.shape()[3]) != (oh, ow)
    {
        return Err(ShapeError::new(format!(
            "conv2d_input_grad: output grad {:?} does not match geometry",
            y_grad.shape()
        )));
    }
    let b = y_grad.shape()[0];
    let k = g.in_channels * g.kernel.0 * g.kernel.1;
    let ospatial = oh * ow;
    let mut x_grad = Tensor::zeros(&[b, g.in_channels, g.in_hw.0, g.in_hw.1]);
    let in_slab = g.in_channels * g.in_hw.0 * g.in_hw.1;
    let out_slab = g.out_channels * ospatial;
    // dx_cols = Wᵀ · dy, read directly from the (O, k) weight layout — no
    // transpose copy.
    let (wd, gd) = (weight.data(), y_grad.data());
    if b == 1 {
        with_scratch(k * ospatial, |cols| {
            runtime::gemm_at_b(rt, wd, gd, cols, k, g.out_channels, ospatial);
            col2im_sample(cols, g, x_grad.data_mut());
        });
        return Ok(x_grad);
    }
    let serial = Runtime::new(1);
    let min_samples = samples_per_fork(2 * g.out_channels * k * ospatial);
    rt.parallel_over_slabs(x_grad.data_mut(), in_slab, min_samples, |s, xg_s| {
        with_scratch(k * ospatial, |cols| {
            runtime::gemm_at_b(
                &serial,
                wd,
                &gd[s * out_slab..(s + 1) * out_slab],
                cols,
                k,
                g.out_channels,
                ospatial,
            );
            col2im_sample(cols, g, xg_s);
        });
    });
    Ok(x_grad)
}

/// Gradient of the convolution with respect to its **weight**:
/// `dW = dy · im2col(x)^T`, summed over the batch.
///
/// # Errors
///
/// Returns [`ShapeError`] if `x` or `y_grad` does not match `g`.
pub fn conv2d_weight_grad(
    x: &Tensor,
    y_grad: &Tensor,
    g: &Conv2dGeometry,
) -> Result<Tensor, ShapeError> {
    conv2d_weight_grad_with(Runtime::global(), x, y_grad, g)
}

/// [`conv2d_weight_grad`] on an explicit [`Runtime`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `x` or `y_grad` does not match `g`.
pub fn conv2d_weight_grad_with(
    rt: &Runtime,
    x: &Tensor,
    y_grad: &Tensor,
    g: &Conv2dGeometry,
) -> Result<Tensor, ShapeError> {
    let (b, oh, ow) = check_input(x, g)?;
    if y_grad.shape() != [b, g.out_channels, oh, ow] {
        return Err(ShapeError::new(format!(
            "conv2d_weight_grad: output grad {:?} does not match geometry",
            y_grad.shape()
        )));
    }
    let k = g.in_channels * g.kernel.0 * g.kernel.1;
    let ospatial = oh * ow;
    let in_slab = g.in_channels * g.in_hw.0 * g.in_hw.1;
    let out_slab = g.out_channels * ospatial;
    let wlen = g.out_channels * k;
    let mut w_grad = Tensor::zeros(&[g.out_channels, g.in_channels, g.kernel.0, g.kernel.1]);
    let (xd, gd) = (x.data(), y_grad.data());
    // Per sample: dW_s = dy_s · im2col(x_s)ᵀ (gemm_a_bt — the caller-side
    // (k, ospatial) → (ospatial, k) transpose copy of the seed
    // implementation is gone; the kernel stages any transpose it needs in
    // arena scratch).
    if b == 1 {
        with_scratch(k * ospatial, |cols| {
            im2col_sample(&xd[..in_slab], g, cols);
            // cols is (k, ospatial); dy · colsᵀ needs B rows contiguous in
            // the shared dim, i.e. B = cols viewed as (k, ospatial) — rows
            // of colsᵀ are columns of cols. gemm_a_bt wants `b` as (n, k̂)
            // with k̂ = ospatial: that is cols itself, n = k rows.
            runtime::gemm_a_bt(rt, gd, cols, w_grad.data_mut(), g.out_channels, ospatial, k);
        });
        return Ok(w_grad);
    }
    // Batch-parallel: each worker produces per-sample partials in a
    // disjoint slab; the batch reduction then runs in fixed sample order so
    // results do not depend on the thread count. The batch is processed in
    // fixed-size chunks so partials memory stays bounded (≤ ~64 MiB) on
    // wide layers × large batches; chunk boundaries are a constant, never
    // a function of the thread count, preserving determinism.
    let serial = Runtime::new(1);
    let min_samples = samples_per_fork(2 * g.out_channels * k * ospatial);
    const MAX_PARTIAL_ELEMS: usize = 16 * 1024 * 1024;
    let chunk = (MAX_PARTIAL_ELEMS / wlen).clamp(1, b);
    let mut partials = vec![0.0f32; chunk * wlen];
    for c0 in (0..b).step_by(chunk) {
        let cn = chunk.min(b - c0);
        let part = &mut partials[..cn * wlen];
        rt.parallel_over_slabs(part, wlen, min_samples, |i, dw_s| {
            let s = c0 + i;
            with_scratch(k * ospatial, |cols| {
                im2col_sample(&xd[s * in_slab..(s + 1) * in_slab], g, cols);
                runtime::gemm_a_bt(
                    &serial,
                    &gd[s * out_slab..(s + 1) * out_slab],
                    cols,
                    dw_s,
                    g.out_channels,
                    ospatial,
                    k,
                );
            });
        });
        let acc = w_grad.data_mut();
        for dw_s in part.chunks(wlen) {
            for (a, &v) in acc.iter_mut().zip(dw_s.iter()) {
                *a += v;
            }
        }
    }
    Ok(w_grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Direct (loop) convolution used as a reference oracle.
    fn conv2d_naive(x: &Tensor, w: &Tensor, g: &Conv2dGeometry) -> Tensor {
        let b = x.shape()[0];
        let (oh, ow) = g.out_hw();
        let mut y = Tensor::zeros(&[b, g.out_channels, oh, ow]);
        for s in 0..b {
            for o in 0..g.out_channels {
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = 0.0;
                        for c in 0..g.in_channels {
                            for ki in 0..g.kernel.0 {
                                for kj in 0..g.kernel.1 {
                                    let ii = (oi * g.stride.0 + ki) as isize - g.padding.0 as isize;
                                    let jj = (oj * g.stride.1 + kj) as isize - g.padding.1 as isize;
                                    if ii >= 0
                                        && jj >= 0
                                        && (ii as usize) < g.in_hw.0
                                        && (jj as usize) < g.in_hw.1
                                    {
                                        acc += x.at(&[s, c, ii as usize, jj as usize])
                                            * w.at(&[o, c, ki, kj]);
                                    }
                                }
                            }
                        }
                        *y.at_mut(&[s, o, oi, oj]) = acc;
                    }
                }
            }
        }
        y
    }

    #[test]
    fn geometry_out_hw() {
        let g = Conv2dGeometry::new(3, 8, (32, 32), (3, 3), (1, 1), (1, 1));
        assert_eq!(g.out_hw(), (32, 32));
        let g = Conv2dGeometry::new(3, 8, (32, 32), (3, 3), (2, 2), (1, 1));
        assert_eq!(g.out_hw(), (16, 16));
        let g = Conv2dGeometry::new(3, 8, (8, 8), (1, 1), (1, 1), (0, 0));
        assert_eq!(g.out_hw(), (8, 8));
        // asymmetric 3x1 with vertical-only padding keeps spatial size
        let g = Conv2dGeometry::new(4, 4, (8, 8), (3, 1), (1, 1), (1, 0));
        assert_eq!(g.out_hw(), (8, 8));
        let g = Conv2dGeometry::new(4, 4, (8, 8), (1, 3), (1, 1), (0, 1));
        assert_eq!(g.out_hw(), (8, 8));
    }

    #[test]
    fn geometry_macs_params() {
        let g = Conv2dGeometry::new(3, 16, (32, 32), (3, 3), (1, 1), (1, 1));
        assert_eq!(g.params(), 16 * 3 * 3 * 3);
        assert_eq!(g.macs(), 16 * 32 * 32 * 3 * 3 * 3);
    }

    #[test]
    fn conv_matches_naive_3x3() {
        let mut rng = Rng::seed_from(10);
        let g = Conv2dGeometry::new(3, 5, (7, 6), (3, 3), (1, 1), (1, 1));
        let x = Tensor::randn(&[2, 3, 7, 6], &mut rng);
        let w = Tensor::randn(&[5, 3, 3, 3], &mut rng);
        let fast = conv2d(&x, &w, &g).unwrap();
        let slow = conv2d_naive(&x, &w, &g);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn conv_matches_naive_asymmetric() {
        let mut rng = Rng::seed_from(11);
        for (kernel, padding) in [((3, 1), (1, 0)), ((1, 3), (0, 1)), ((1, 1), (0, 0))] {
            let g = Conv2dGeometry::new(4, 3, (6, 5), kernel, (1, 1), padding);
            let x = Tensor::randn(&[2, 4, 6, 5], &mut rng);
            let w = Tensor::randn(&[3, 4, kernel.0, kernel.1], &mut rng);
            let fast = conv2d(&x, &w, &g).unwrap();
            let slow = conv2d_naive(&x, &w, &g);
            assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4, "kernel {kernel:?} mismatch");
        }
    }

    #[test]
    fn conv_matches_naive_strided() {
        let mut rng = Rng::seed_from(12);
        let g = Conv2dGeometry::new(2, 4, (9, 9), (3, 3), (2, 2), (1, 1));
        let x = Tensor::randn(&[1, 2, 9, 9], &mut rng);
        let w = Tensor::randn(&[4, 2, 3, 3], &mut rng);
        let fast = conv2d(&x, &w, &g).unwrap();
        let slow = conv2d_naive(&x, &w, &g);
        assert_eq!(fast.shape(), &[1, 4, 5, 5]);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn conv_rejects_bad_shapes() {
        let g = Conv2dGeometry::new(3, 5, (8, 8), (3, 3), (1, 1), (1, 1));
        let x = Tensor::zeros(&[1, 3, 8, 8]);
        let w_bad = Tensor::zeros(&[5, 3, 3, 1]);
        assert!(conv2d(&x, &w_bad, &g).is_err());
        let x_bad = Tensor::zeros(&[1, 4, 8, 8]);
        let w = Tensor::zeros(&[5, 3, 3, 3]);
        assert!(conv2d(&x_bad, &w, &g).is_err());
        assert!(conv2d(&Tensor::zeros(&[3, 8, 8]), &w, &g).is_err());
    }

    /// Finite-difference check of the weight gradient.
    #[test]
    fn weight_grad_matches_finite_difference() {
        let mut rng = Rng::seed_from(13);
        let g = Conv2dGeometry::new(2, 3, (5, 5), (3, 3), (1, 1), (1, 1));
        let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
        let mut w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        // loss = sum(conv(x, w) * m) for a fixed random m
        let (oh, ow) = g.out_hw();
        let m = Tensor::randn(&[2, 3, oh, ow], &mut rng);
        let analytic = conv2d_weight_grad(&x, &m, &g).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 7, 23, 41, 53] {
            let orig = w.data()[idx];
            w.data_mut()[idx] = orig + eps;
            let lp = conv2d(&x, &w, &g).unwrap().mul(&m).unwrap().sum();
            w.data_mut()[idx] = orig - eps;
            let lm = conv2d(&x, &w, &g).unwrap().mul(&m).unwrap().sum();
            w.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs()),
                "idx {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    /// Finite-difference check of the input gradient.
    #[test]
    fn input_grad_matches_finite_difference() {
        let mut rng = Rng::seed_from(14);
        let g = Conv2dGeometry::new(2, 3, (5, 4), (3, 1), (1, 1), (1, 0));
        let mut x = Tensor::randn(&[1, 2, 5, 4], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 1], &mut rng);
        let (oh, ow) = g.out_hw();
        let m = Tensor::randn(&[1, 3, oh, ow], &mut rng);
        let analytic = conv2d_input_grad(&m, &w, &g).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 5, 17, 33] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let lp = conv2d(&x, &w, &g).unwrap().mul(&m).unwrap().sum();
            x.data_mut()[idx] = orig - eps;
            let lm = conv2d(&x, &w, &g).unwrap().mul(&m).unwrap().sum();
            x.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs()),
                "idx {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    /// conv2d is linear in x: conv(a*x1 + b*x2) == a*conv(x1) + b*conv(x2).
    #[test]
    fn conv_is_linear_in_input() {
        let mut rng = Rng::seed_from(15);
        let g = Conv2dGeometry::new(3, 4, (6, 6), (3, 3), (1, 1), (1, 1));
        let x1 = Tensor::randn(&[1, 3, 6, 6], &mut rng);
        let x2 = Tensor::randn(&[1, 3, 6, 6], &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let lhs = conv2d(&x1.scale(2.0).add(&x2.scale(-0.5)).unwrap(), &w, &g).unwrap();
        let rhs = conv2d(&x1, &w, &g)
            .unwrap()
            .scale(2.0)
            .add(&conv2d(&x2, &w, &g).unwrap().scale(-0.5))
            .unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-4);
    }

    /// im2col/col2im adjointness: <im2col(x), c> == <x, col2im(c)>.
    #[test]
    fn im2col_col2im_adjoint() {
        let mut rng = Rng::seed_from(16);
        let g = Conv2dGeometry::new(2, 1, (5, 5), (3, 3), (1, 1), (1, 1));
        let x = Tensor::randn(&[2, 5, 5], &mut rng);
        let k = 2 * 3 * 3;
        let (oh, ow) = g.out_hw();
        let mut cols = vec![0.0f32; k * oh * ow];
        im2col_sample(x.data(), &g, &mut cols);
        let c = Tensor::randn(&[k * oh * ow], &mut rng);
        let lhs: f32 = cols.iter().zip(c.data().iter()).map(|(a, b)| a * b).sum();
        let mut folded = vec![0.0f32; 2 * 5 * 5];
        col2im_sample(c.data(), &g, &mut folded);
        let rhs: f32 = folded.iter().zip(x.data().iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }
}
