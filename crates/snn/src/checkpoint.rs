//! Binary checkpointing of model parameters.
//!
//! The paper's workflow has three phases — pre-train the base SNN,
//! decompose + train the TT-SNN, merge back for deployment — and each
//! phase hands weights to the next. This module provides the persistence
//! layer: a small, versioned, little-endian binary format holding an
//! ordered list of tensors (shape + `f32` data).
//!
//! Parameters are identified *positionally*: save and load must use the
//! same architecture (the same [`crate::SpikingModel::params`] order),
//! which the loader enforces by shape-checking every tensor.
//!
//! # Format history
//!
//! * **v2** (written by [`save_params`]): magic `TTSN`, `u32` version,
//!   `u64` tensor count, a **length table** (`u64` element count per
//!   tensor), then the tensors (`u32` rank, `u64` dims, `f32` data). The
//!   table lets the loader reject an architecture mismatch with a precise
//!   per-tensor error *before* reading megabytes of weights.
//! * **v1**: as v2 but without the length table. Still readable.
//! * **v0** (headerless, pre-versioning): the bare tensor list with no
//!   magic/version/count. Still readable — the loader detects the missing
//!   magic and falls back.

use std::io::{self, Read, Write};

use ttsnn_autograd::Var;
use ttsnn_tensor::Tensor;

const MAGIC: &[u8; 4] = b"TTSN";
const VERSION: u32 = 2;

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serializes parameter tensors to a writer in the current (v2) format.
/// Pass `&mut` of anything `Write` (a `File`, a `Vec<u8>`, …).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params<W: Write>(params: &[Var], mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u64(&mut w, params.len() as u64)?;
    // v2 length table: element count per tensor, up front.
    for p in params {
        write_u64(&mut w, p.value().len() as u64)?;
    }
    for p in params {
        let t = p.value();
        write_u32(&mut w, t.ndim() as u32)?;
        for &d in t.shape() {
            write_u64(&mut w, d as u64)?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads one tensor record (`u32` rank, `u64` dims, `f32` data),
/// shape-checked against destination parameter `p`.
fn read_tensor<R: Read>(r: &mut R, p: &Var, i: usize) -> io::Result<Tensor> {
    let ndim = read_u32(r)? as usize;
    if ndim > 8 {
        return Err(bad(format!("tensor {i}: implausible rank {ndim}")));
    }
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(read_u64(r)? as usize);
    }
    if shape != p.shape() {
        return Err(bad(format!(
            "tensor {i}: checkpoint shape {:?} vs model shape {:?}",
            shape,
            p.shape()
        )));
    }
    let n: usize = shape.iter().product();
    let mut data = vec![0.0f32; n];
    for v in &mut data {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        *v = f32::from_le_bytes(b);
    }
    Tensor::from_vec(data, &shape).map_err(|e| bad(e.to_string()))
}

/// Decodes the tensor list shared by every format version. Callers
/// install the result only once the whole stream validated, so a partial
/// read never leaves the model half-loaded.
fn decode_tensor_list<R: Read>(params: &[Var], r: &mut R) -> io::Result<Vec<Tensor>> {
    let mut tensors = Vec::with_capacity(params.len());
    for (i, p) in params.iter().enumerate() {
        tensors.push(read_tensor(r, p, i)?);
    }
    Ok(tensors)
}

fn install(params: &[Var], tensors: Vec<Tensor>) {
    for (p, t) in params.iter().zip(tensors) {
        p.set_value(t);
    }
}

/// Loads a checkpoint into existing parameters, in order, shape-checked.
/// Understands the current v2 format plus the legacy v1 (no length table)
/// and v0 (headerless) streams.
///
/// # Errors
///
/// Returns an `InvalidData` error if the stream is not a checkpoint, the
/// version is unsupported, the parameter count differs, any length-table
/// entry disagrees with the destination parameter (v2 — reported before
/// any weight data is read), or any tensor's shape disagrees with the
/// destination parameter.
pub fn load_params<R: Read>(params: &[Var], mut r: R) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        // v0: headerless tensor list — the four bytes we consumed are the
        // first tensor's rank field.
        let mut chained = magic.as_slice().chain(r);
        let tensors = decode_tensor_list(params, &mut chained)?;
        let mut probe = [0u8; 1];
        if chained.read(&mut probe)? != 0 {
            return Err(bad(format!(
                "headerless checkpoint has trailing data after {} tensors \
                 (architecture mismatch?)",
                params.len()
            )));
        }
        install(params, tensors);
        return Ok(());
    }
    let version = read_u32(&mut r)?;
    if version == 0 || version > VERSION {
        return Err(bad(format!(
            "unsupported checkpoint version {version} (this build reads v0..=v{VERSION})"
        )));
    }
    let count = read_u64(&mut r)? as usize;
    if count != params.len() {
        return Err(bad(format!(
            "checkpoint holds {count} tensors but the model has {}",
            params.len()
        )));
    }
    if version >= 2 {
        // Length table: catch architecture mismatches up front with a
        // per-tensor message instead of failing mid-stream.
        for (i, p) in params.iter().enumerate() {
            let len = read_u64(&mut r)? as usize;
            let want = p.value().len();
            if len != want {
                return Err(bad(format!(
                    "tensor {i}: checkpoint holds {len} elements but the model parameter \
                     has {want} (shape {:?}) — architecture mismatch?",
                    p.shape()
                )));
            }
        }
    }
    let tensors = decode_tensor_list(params, &mut r)?;
    install(params, tensors);
    Ok(())
}

/// Converts every parameter's value to `Arc`-**shared** tensor storage and
/// returns O(1) handles to the shared buffers, in
/// [`crate::SpikingModel::params`] order.
///
/// This is the serving cluster's "load weights once" primitive: the plan
/// builder calls it after [`load_params`] (and any TT→dense merge), ships
/// the returned handles to the other executor replicas (they are `Send` —
/// plain data, no autograd), and each replica installs them with
/// [`install_params`]. Afterwards **all** replicas' parameters alias one
/// buffer per tensor ([`Tensor::shares_storage_with`]); per-replica memory
/// is just membrane state. The calling model's own parameters are switched
/// to the shared storage too, so it serves from the same single copy.
///
/// Training afterwards remains safe — tensor storage is copy-on-write, an
/// optimizer step detaches a private copy — but defeats the sharing, so
/// treat shared parameters as frozen.
pub fn share_params(params: &[Var]) -> Vec<Tensor> {
    params
        .iter()
        .map(|p| {
            let shared = p.to_tensor().into_shared();
            p.set_value(shared.clone());
            shared
        })
        .collect()
}

/// Installs pre-decoded tensors into existing parameters, in order,
/// shape-checked — the replica-side half of [`share_params`]. Installing a
/// shared tensor is an O(1) handle copy; no weight data moves.
///
/// Nothing is installed unless the whole list validates (same
/// all-or-nothing contract as [`load_params`]).
///
/// # Errors
///
/// Returns an `InvalidData` error if the tensor count or any tensor's
/// shape disagrees with the destination parameters.
pub fn install_params(params: &[Var], tensors: &[Tensor]) -> io::Result<()> {
    if tensors.len() != params.len() {
        return Err(bad(format!(
            "plan holds {} tensors but the model has {} parameters",
            tensors.len(),
            params.len()
        )));
    }
    for (i, (p, t)) in params.iter().zip(tensors).enumerate() {
        if t.shape() != p.shape() {
            return Err(bad(format!(
                "tensor {i}: plan shape {:?} vs model shape {:?}",
                t.shape(),
                p.shape()
            )));
        }
    }
    for (p, t) in params.iter().zip(tensors) {
        p.set_value(t.clone());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_unit::ConvPolicy;
    use crate::model::{SpikingModel, TrainForward};
    use crate::resnet::{ResNetConfig, ResNetSnn};
    use ttsnn_tensor::Rng;

    #[test]
    fn roundtrip_preserves_values() {
        let mut rng = Rng::seed_from(1);
        let params: Vec<Var> =
            (0..3).map(|i| Var::param(Tensor::randn(&[2 + i, 3], &mut rng))).collect();
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        let originals: Vec<Tensor> = params.iter().map(|p| p.to_tensor()).collect();
        for p in &params {
            p.update_value(|t| t.map_inplace(|_| 0.0));
        }
        load_params(&params, buf.as_slice()).unwrap();
        for (p, o) in params.iter().zip(&originals) {
            assert_eq!(&p.to_tensor(), o);
        }
    }

    #[test]
    fn rejects_garbage_and_mismatches() {
        let p = [Var::param(Tensor::zeros(&[2, 2]))];
        assert!(load_params(&p, &b"nope"[..]).is_err());

        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        // wrong parameter count
        let q = [p[0].clone(), Var::param(Tensor::zeros(&[1]))];
        assert!(load_params(&q, buf.as_slice()).is_err());
        // wrong shape
        let r = [Var::param(Tensor::zeros(&[4]))];
        assert!(load_params(&r, buf.as_slice()).is_err());
        // truncated stream
        assert!(load_params(&p, &buf[..buf.len() - 2]).is_err());
    }

    #[test]
    fn version_check() {
        let p = [Var::param(Tensor::zeros(&[1]))];
        let mut buf = Vec::new();
        save_params(&p, &mut buf).unwrap();
        buf[4] = 99; // corrupt version field
        assert!(load_params(&p, buf.as_slice()).is_err());
    }

    /// Writes the given tensors in a legacy format: v0 has no header at
    /// all, v1 has magic + version + count but no length table.
    fn write_legacy(params: &[Var], version: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        if version >= 1 {
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&(params.len() as u64).to_le_bytes());
        }
        for p in params {
            let t = p.value();
            buf.extend_from_slice(&(t.ndim() as u32).to_le_bytes());
            for &d in t.shape() {
                buf.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &v in t.data() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf
    }

    #[test]
    fn reads_legacy_v1_and_v0_streams() {
        let mut rng = Rng::seed_from(5);
        let src: Vec<Var> =
            (0..3).map(|i| Var::param(Tensor::randn(&[2, i + 1], &mut rng))).collect();
        for version in [0u32, 1] {
            let buf = write_legacy(&src, version);
            let dst: Vec<Var> = (0..3).map(|i| Var::param(Tensor::zeros(&[2, i + 1]))).collect();
            load_params(&dst, buf.as_slice()).unwrap();
            for (s, d) in src.iter().zip(&dst) {
                assert_eq!(s.to_tensor(), d.to_tensor(), "legacy v{version} roundtrip");
            }
        }
    }

    #[test]
    fn v0_trailing_data_is_rejected_without_installing() {
        let src = [Var::param(Tensor::ones(&[2]))];
        let mut buf = write_legacy(&src, 0);
        buf.extend_from_slice(&write_legacy(&[Var::param(Tensor::ones(&[1]))], 0));
        let dst = [Var::param(Tensor::zeros(&[2]))];
        assert!(load_params(&dst, buf.as_slice()).is_err());
        assert_eq!(dst[0].to_tensor().data(), &[0.0, 0.0], "failed load must not install");
    }

    #[test]
    fn v2_length_table_reports_mismatch_before_weights() {
        let src = [Var::param(Tensor::ones(&[4]))];
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let dst = [Var::param(Tensor::zeros(&[5]))];
        let err = load_params(&dst, buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("4 elements") && msg.contains("architecture mismatch"),
            "length-table error should name the offending tensor, got: {msg}"
        );
    }

    #[test]
    fn share_and_install_alias_one_buffer_per_tensor() {
        let mut rng = Rng::seed_from(11);
        let src: Vec<Var> =
            (0..3).map(|i| Var::param(Tensor::randn(&[2, i + 2], &mut rng))).collect();
        let originals: Vec<Tensor> = src.iter().map(|p| p.to_tensor()).collect();
        let shared = share_params(&src);
        // The sharer's own params now alias the shared buffers...
        for (p, s) in src.iter().zip(&shared) {
            assert!(p.value().shares_storage_with(s), "sharer must serve from the shared copy");
        }
        // ...and so does a replica after install, with identical values.
        let replica: Vec<Var> = (0..3).map(|i| Var::param(Tensor::zeros(&[2, i + 2]))).collect();
        install_params(&replica, &shared).unwrap();
        for ((p, s), o) in replica.iter().zip(&shared).zip(&originals) {
            assert!(p.value().shares_storage_with(s), "replica must alias, not copy");
            assert_eq!(&p.to_tensor(), o);
        }
    }

    #[test]
    fn install_params_validates_before_installing() {
        let shared = share_params(&[Var::param(Tensor::ones(&[2, 2]))]);
        // Count mismatch.
        let two = [Var::param(Tensor::zeros(&[2, 2])), Var::param(Tensor::zeros(&[1]))];
        assert!(install_params(&two, &shared).is_err());
        // Shape mismatch: nothing may be installed (all-or-nothing).
        let wrong = [Var::param(Tensor::zeros(&[4]))];
        assert!(install_params(&wrong, &shared).is_err());
        assert_eq!(wrong[0].to_tensor().data(), &[0.0; 4]);
    }

    #[test]
    fn model_checkpoint_restores_behaviour() {
        let mut rng = Rng::seed_from(2);
        let cfg = ResNetConfig::resnet18(3, (8, 8), 16);
        let mut a = ResNetSnn::new(cfg.clone(), &ConvPolicy::Baseline, &mut rng);
        let mut b = ResNetSnn::new(cfg, &ConvPolicy::Baseline, &mut rng);
        let x = Var::constant(Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng));
        let ya = a.forward_timestep(&x, 0).unwrap().to_tensor();
        a.reset_state();
        // b differs from a before loading...
        let yb = b.forward_timestep(&x, 0).unwrap().to_tensor();
        b.reset_state();
        assert!(ya.max_abs_diff(&yb).unwrap() > 0.0 || ya == yb);
        // ...and matches exactly after.
        let mut buf = Vec::new();
        save_params(&a.params(), &mut buf).unwrap();
        load_params(&b.params(), buf.as_slice()).unwrap();
        let yb2 = b.forward_timestep(&x, 0).unwrap().to_tensor();
        assert_eq!(ya, yb2);
    }
}
