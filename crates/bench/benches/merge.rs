//! Micro-bench of Algorithm 1's offline stages: TT-SVD decomposition
//! (lines 3–5) and merge-back (lines 20–22, Eq. (6)).

use criterion::{criterion_group, criterion_main, Criterion};
use ttsnn_core::merge::{merge_ptt, merge_stt};
use ttsnn_core::ttsvd::{decompose, TtCores};
use ttsnn_tensor::{Rng, Tensor};

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose_and_merge_64ch");
    let mut rng = Rng::seed_from(1);
    let dense = Tensor::kaiming(&[64, 64, 3, 3], &mut rng);
    group.bench_function("tt_svd_rank20", |b| b.iter(|| decompose(&dense, 20).expect("svd")));
    let cores = TtCores::randn(64, 64, 20, &mut rng);
    group.bench_function("merge_stt", |b| b.iter(|| merge_stt(&cores).expect("merge")));
    group.bench_function("merge_ptt", |b| b.iter(|| merge_ptt(&cores).expect("merge")));
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
