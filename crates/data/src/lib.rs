//! # ttsnn-data
//!
//! Synthetic dataset generators standing in for the paper's benchmarks.
//!
//! The paper evaluates on CIFAR10/100 (static images), N-Caltech101
//! (event-camera saccades over static scenes) and DVS128 Gesture (true
//! motion). Real downloads are unavailable in this environment, so this
//! crate generates **synthetic datasets with the same tensor layout and —
//! crucially — the same temporal statistics**:
//!
//! * [`StaticImages`] — CIFAR-like: class-conditional spatial patterns +
//!   noise, `(C, H, W)` floats in `[0, 1]`. Under direct coding the same
//!   frame repeats at every timestep, so information is concentrated in
//!   early timesteps — the regime where the paper finds HTT works well.
//! * [`EventStream`] — N-Caltech101-like: each timestep is a *distinct*
//!   2-polarity event frame produced by a simulated saccade over the class
//!   pattern, so later timesteps carry novel information — the regime where
//!   the paper finds HTT loses accuracy.
//! * [`GestureStream`] — DVS-Gesture-like: classes are motion patterns
//!   (direction/speed of a moving blob), only decodable from the temporal
//!   sequence.
//!
//! Batching ([`Batch`], [`Dataset::batches`]) produces per-timestep NCHW
//! tensors ready for the BPTT trainer in `ttsnn-snn`.

#![warn(missing_docs)]

mod batch;
mod events;
mod synth;

pub use batch::{stack_frames, Batch, Dataset, Sample};
pub use events::{EventStream, GestureStream};
pub use synth::StaticImages;
