//! Table II's compression story on the full-size architectures: builds the
//! analytic MS-ResNet18/34 specs with the paper's published VBMF ranks and
//! prints the parameter/FLOP compression each TT mode achieves.
//!
//! ```sh
//! cargo run --release --example compress_resnet
//! ```

use tt_snn::core::flops::{resnet18_cifar, resnet34_ncaltech};
use tt_snn::core::TtMode;

fn main() {
    for spec in [resnet18_cifar(10), resnet18_cifar(100), resnet34_ncaltech()] {
        println!("\n## {} (T = {})", spec.name, spec.timesteps);
        println!(
            "baseline: {:.2} M params, {:.3} G FLOPs (MACs x T)",
            spec.baseline_params() as f64 / 1e6,
            spec.baseline_macs() as f64 / 1e9
        );
        println!(
            "TT:       {:.2} M params ({:.2}x compression), {} decomposed layers",
            spec.tt_params() as f64 / 1e6,
            spec.param_compression(),
            spec.num_decomposed()
        );
        for (name, mode) in [
            ("STT", TtMode::Stt),
            ("PTT", TtMode::Ptt),
            ("HTT", TtMode::htt_default(spec.timesteps)),
        ] {
            println!(
                "  {name}: {:.3} G FLOPs ({:.2}x)",
                spec.mode_macs(&mode) as f64 / 1e9,
                spec.flop_compression(&mode)
            );
        }
    }
    println!("\npaper reference (Table II): ResNet18 6.13x params / 5.97x FLOPs,");
    println!("HTT 7.88x; ResNet34 7.98x params / 9.25x FLOPs, HTT 10.75x.");
}
