//! The continuous telemetry plane, end to end over real sockets.
//!
//! The headline test drives one plan through a full incident arc —
//! healthy → saturated with deadline-missing traffic → recovered —
//! observing every transition through the HTTP surface alone: burn
//! rates rise on `/debug/slo`, `/healthz` flips to 503 with the
//! watchdog's reason and back to 200, and `ttsnn_health_state`
//! transitions 0 → 2 → 0 on `/metrics`. Alongside: served logits stay
//! bit-identical with the sampler on vs off, and dropping the server
//! joins the sampler thread (its tick counter freezes).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use ttsnn_core::TtMode;
use ttsnn_infer::{ClusterConfig, Priority};
use ttsnn_obs::slo::SloSpec;
use ttsnn_obs::timeseries::TelemetryConfig;
use ttsnn_obs::watchdog::WatchdogConfig;
use ttsnn_serve::wire::{Request, Status};
use ttsnn_serve::{http_get, Client, PlanSpec, Router, Server, ServerConfig, TelemetryOptions};
use ttsnn_snn::ConvPolicy;
use ttsnn_testutil::{samples, vgg_checkpoint, vgg_cluster_config};

const T: usize = 2;

fn policy() -> ConvPolicy {
    ConvPolicy::tt(TtMode::Ptt)
}

/// A deliberately slow plan (~10 ms per forward pass on a dev
/// container): queued 1 ms deadlines reliably expire behind it.
fn slow_plan(timesteps: usize) -> (Vec<u8>, ClusterConfig) {
    use ttsnn_snn::{checkpoint, SpikingModel, VggConfig, VggSnn};
    let cfg = VggConfig::vgg9(3, 10, (32, 32), 16);
    let model = VggSnn::new(cfg.clone(), &policy(), &mut ttsnn_tensor::Rng::seed_from(7));
    let mut ckpt = Vec::new();
    checkpoint::save_params(&model.params(), &mut ckpt).expect("serialize checkpoint");
    let config = ClusterConfig::new(
        ttsnn_infer::EngineConfig::new(ttsnn_infer::ArchSpec::Vgg(cfg), policy(), timesteps)
            .with_batching(ttsnn_infer::BatchPolicy { max_batch: 1, max_wait: Duration::ZERO }),
    )
    .with_replicas(1);
    (ckpt, config)
}

fn request(plan: &str, tenant: u32, deadline_ms: u32, input: ttsnn_tensor::Tensor) -> Request {
    Request { trace: 0, tenant, priority: Priority::Normal, deadline_ms, plan: plan.into(), input }
}

/// Fast sampler + tight watchdog so the whole arc fits in CI seconds.
fn fast_telemetry() -> TelemetryOptions {
    TelemetryOptions {
        enabled: true,
        timeseries: TelemetryConfig { resolution: Duration::from_millis(25), slots: 256 },
        // 90% of events good within 5 ms — a threshold the slow plan
        // cannot meet under deadline-missing flood traffic.
        slo: SloSpec { latency: Duration::from_millis(5), target: 0.9 },
        watchdog: WatchdogConfig {
            // Keep the stall and heartbeat detectors out of this test's
            // way: the miss streak is the condition under test.
            stall_samples: 1_000_000,
            miss_streak_degraded: 2,
            miss_streak_unhealthy: 4,
            eviction_storm: 1_000_000,
            heartbeat_stale: Duration::from_secs(600),
            recovery_samples: 2,
        },
    }
}

fn poll_healthz(addr: std::net::SocketAddr, want: u16, timeout: Duration) -> Option<String> {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if let Ok((code, body)) = http_get(addr, "/healthz") {
            if code == want {
                return Some(body);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

/// Healthy → unhealthy → recovered, observed via HTTP alone.
#[test]
fn health_arc_is_visible_over_http() {
    let (ckpt, config) = slow_plan(12);
    let mut rng = ttsnn_tensor::Rng::seed_from(91);
    let inputs: Vec<ttsnn_tensor::Tensor> =
        (0..4).map(|_| ttsnn_tensor::Tensor::randn(&[3, 32, 32], &mut rng)).collect();
    let router = Router::load(vec![PlanSpec {
        name: "vgg-slow".into(),
        config,
        quant: None,
        checkpoint: ckpt,
    }])
    .unwrap();
    let server = Server::bind(
        ServerConfig { workers: 6, telemetry: fast_telemetry(), ..Default::default() },
        router,
    )
    .unwrap();
    let addr = server.addr();

    // Phase 1 — healthy: a few served requests, probe answers 200/ok.
    let mut client = Client::connect(addr).unwrap();
    let baseline: Vec<Vec<u32>> = inputs
        .iter()
        .map(|x| {
            let resp = client.request(&request("vgg-slow", 1, 0, x.clone())).unwrap();
            assert_eq!(resp.status, Status::Ok, "{}", resp.message);
            resp.logits.iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    let body = poll_healthz(addr, 200, Duration::from_secs(5)).expect("healthy probe");
    assert!(body.starts_with("{\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"health\":\"healthy\""), "{body}");

    // Phase 2 — flood with 1 ms deadlines: queued requests expire every
    // tick, the miss streak trips the watchdog, the probe flips to 503.
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for worker in 0..3u32 {
            let stop = &stop;
            let flood = inputs[worker as usize % inputs.len()].clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    // Expired and served alike — what matters is that
                    // every sampler tick sees fresh deadline misses.
                    let _ = client.request(&request("vgg-slow", 2 + worker, 1, flood.clone()));
                }
            });
        }

        let body =
            poll_healthz(addr, 503, Duration::from_secs(20)).expect("flood flips /healthz to 503");
        assert!(body.contains("\"status\":\"unhealthy\""), "{body}");
        assert!(body.contains("\"reason\":\""), "carries the watchdog reason: {body}");
        assert!(body.contains("deadline-miss"), "names the condition: {body}");

        // The burn is visible on /debug/slo and /metrics while it burns.
        let (code, slo_page) = http_get(addr, "/debug/slo").unwrap();
        assert_eq!(code, 200);
        assert!(slo_page.contains("slo objective: 90.00%"), "{slo_page}");
        assert!(slo_page.contains("plan vgg-slow: unhealthy"), "{slo_page}");
        assert!(slo_page.contains("[page]"), "health transition paged: {slo_page}");
        let (_, metrics) = http_get(addr, "/metrics").unwrap();
        assert!(metrics.contains("ttsnn_health_state{plan=\"vgg-slow\"} 2"), "{metrics}");
        let burn_5m = metrics
            .lines()
            .find(|l| l.starts_with("ttsnn_slo_burn_rate{plan=\"vgg-slow\",window=\"5m\"}"))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v.parse::<f64>().unwrap())
            .expect("burn-rate series present");
        assert!(burn_5m > 1.0, "fast window burns over budget: {burn_5m}");

        stop.store(true, Ordering::Relaxed);
    });

    // Phase 3 — recovered: misses stop, hysteresis steps the plan back
    // down to healthy, the probe returns to 200/ok.
    let body = poll_healthz(addr, 200, Duration::from_secs(20)).expect("probe recovers to 200");
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut body = body;
    while !body.starts_with("{\"status\":\"ok\"") && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
        body = http_get(addr, "/healthz").unwrap().1;
    }
    assert!(body.starts_with("{\"status\":\"ok\""), "fully healthy again: {body}");
    let (_, metrics) = http_get(addr, "/metrics").unwrap();
    assert!(metrics.contains("ttsnn_health_state{plan=\"vgg-slow\"} 0"), "{metrics}");
    // The recovery was evented too.
    let (_, slo_page) = http_get(addr, "/debug/slo").unwrap();
    assert!(slo_page.contains("health recovered"), "{slo_page}");

    // The incident changed nothing about the bits.
    let mut client = Client::connect(addr).unwrap();
    for (x, expected) in inputs.iter().zip(&baseline) {
        let resp = client.request(&request("vgg-slow", 1, 0, x.clone())).unwrap();
        assert_eq!(resp.status, Status::Ok, "{}", resp.message);
        let got: Vec<u32> = resp.logits.iter().map(|v| v.to_bits()).collect();
        assert_eq!(&got, expected, "logits bit-identical after the incident");
    }
}

/// Served logits are bit-identical with the sampler on vs off.
#[test]
fn logits_bit_identical_sampler_on_vs_off() {
    let (ckpt, _) = vgg_checkpoint(&policy(), 95);
    let inputs = samples(96, 5);
    let config = || vgg_cluster_config(policy(), T, 1, 4, Duration::from_millis(1));
    let mount = |ckpt: Vec<u8>| {
        Router::load(vec![PlanSpec {
            name: "vgg".into(),
            config: config(),
            quant: None,
            checkpoint: ckpt,
        }])
        .unwrap()
    };
    let on = TelemetryOptions {
        timeseries: TelemetryConfig { resolution: Duration::from_millis(5), slots: 64 },
        ..Default::default()
    };
    let off = TelemetryOptions { enabled: false, ..Default::default() };
    let server_on = Server::bind(
        ServerConfig { workers: 2, telemetry: on, ..Default::default() },
        mount(ckpt.clone()),
    )
    .unwrap();
    let server_off = Server::bind(
        ServerConfig { workers: 2, telemetry: off, ..Default::default() },
        mount(ckpt),
    )
    .unwrap();

    let bits = |addr: std::net::SocketAddr| -> Vec<Vec<u32>> {
        let mut client = Client::connect(addr).unwrap();
        inputs
            .iter()
            .map(|x| {
                let resp = client
                    .request(&Request {
                        trace: 0,
                        tenant: 1,
                        priority: Priority::Normal,
                        deadline_ms: 0,
                        plan: "vgg".into(),
                        input: x.clone(),
                    })
                    .unwrap();
                assert_eq!(resp.status, Status::Ok, "{}", resp.message);
                resp.logits.iter().map(|v| v.to_bits()).collect()
            })
            .collect()
    };
    let with_sampler = bits(server_on.addr());
    let without = bits(server_off.addr());
    assert_eq!(with_sampler, without, "sampler on vs off must not change a logit bit");

    // The on-server really sampled; the off-server really didn't.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server_on.telemetry().ticks() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(server_on.telemetry().ticks() >= 2, "sampler ticked");
    assert_eq!(server_off.telemetry().ticks(), 0, "disabled plane never ticks");
    assert!(server_off.telemetry().store().is_empty());
}

/// `Server::drop` joins the sampler: the tick counter freezes and the
/// history stays readable through the surviving `Arc`.
#[test]
fn sampler_joins_cleanly_on_server_drop() {
    let (ckpt, _) = vgg_checkpoint(&policy(), 97);
    let router = Router::load(vec![PlanSpec {
        name: "vgg".into(),
        config: vgg_cluster_config(policy(), T, 1, 2, Duration::from_millis(1)),
        quant: None,
        checkpoint: ckpt,
    }])
    .unwrap();
    let telemetry = TelemetryOptions {
        timeseries: TelemetryConfig { resolution: Duration::from_millis(5), slots: 64 },
        ..Default::default()
    };
    let server =
        Server::bind(ServerConfig { workers: 1, telemetry, ..Default::default() }, router).unwrap();
    let shared = server.telemetry();
    let deadline = Instant::now() + Duration::from_secs(5);
    while shared.ticks() < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(shared.ticks() >= 3, "sampler is live");
    drop(server);
    let frozen = shared.ticks();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(shared.ticks(), frozen, "sampler joined on drop; no further ticks");
    // Frozen, but still readable: the rings survived the server.
    assert!(!shared.store().is_empty());
    assert!(shared.store().snapshot("plan/vgg/queue_depth").is_some());
    assert_eq!(shared.plan_status().len(), 1);
}

/// The timeline endpoint lists series, renders sparklines, and 404s on
/// unknown names; `/healthz?verbose=1` carries per-plan detail.
#[test]
fn timeline_and_verbose_healthz_render() {
    let (ckpt, _) = vgg_checkpoint(&policy(), 99);
    let input = samples(98, 1).remove(0);
    let router = Router::load(vec![PlanSpec {
        name: "vgg".into(),
        config: vgg_cluster_config(policy(), T, 1, 2, Duration::from_millis(1)),
        quant: None,
        checkpoint: ckpt,
    }])
    .unwrap();
    let telemetry = TelemetryOptions {
        timeseries: TelemetryConfig { resolution: Duration::from_millis(10), slots: 64 },
        ..Default::default()
    };
    let server =
        Server::bind(ServerConfig { workers: 2, telemetry, ..Default::default() }, router).unwrap();
    let addr = server.addr();
    let shared = server.telemetry();

    let mut client = Client::connect(addr).unwrap();
    let resp = client.request(&request("vgg", 3, 0, input)).unwrap();
    assert_eq!(resp.status, Status::Ok, "{}", resp.message);
    let first = shared.ticks();
    let deadline = Instant::now() + Duration::from_secs(5);
    while shared.ticks() < first + 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    let (code, listing) = http_get(addr, "/debug/timeline").unwrap();
    assert_eq!(code, 200);
    for needle in
        ["plan/vgg/served_total", "plan/vgg/queue_depth", "stage/execute/count", "resolution"]
    {
        assert!(listing.contains(needle), "timeline listing missing {needle}:\n{listing}");
    }
    let (code, view) = http_get(addr, "/debug/timeline?series=plan/vgg/served_total").unwrap();
    assert_eq!(code, 200);
    assert!(view.contains("per-tick increase"), "{view}");
    assert!(view.contains("min "), "{view}");
    let (code, _) = http_get(addr, "/debug/timeline?series=nope").unwrap();
    assert_eq!(code, 404);

    let (code, body) = http_get(addr, "/healthz?verbose=1").unwrap();
    assert_eq!(code, 200);
    for needle in ["\"health\":\"healthy\"", "\"reason\":\"\"", "\"outstanding\":"] {
        assert!(body.contains(needle), "verbose healthz missing {needle}: {body}");
    }

    // /debug/slo renders even in the quiet case.
    let (code, slo_page) = http_get(addr, "/debug/slo").unwrap();
    assert_eq!(code, 200);
    assert!(slo_page.contains("plan vgg: healthy"), "{slo_page}");
    assert!(slo_page.contains("budget remaining"), "{slo_page}");
}
