//! Property-based tests for the TT-SNN core: merge/forward equivalence and
//! decomposition invariants over random layer dimensions.

use proptest::prelude::*;
use ttsnn_core::merge::{merge_ptt, merge_stt};
use ttsnn_core::ttsvd::{decompose, TtCores};
use ttsnn_core::{HttSchedule, TtConv, TtMode};
use ttsnn_tensor::{conv, Conv2dGeometry, Rng, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stt_merge_equals_forward_any_dims(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let i = 2 + rng.below(6);
        let o = 2 + rng.below(6);
        let r = 1 + rng.below(i.min(o));
        let hw = (4 + rng.below(4), 4 + rng.below(4));
        let layer = TtConv::randn(i, o, r, TtMode::Stt, &mut rng);
        let x = Tensor::randn(&[1, i, hw.0, hw.1], &mut rng);
        let via_tt = layer.forward_tensor(&x, 0).unwrap();
        let g = Conv2dGeometry::new(i, o, hw, (3, 3), (1, 1), (1, 1));
        let via_dense = conv::conv2d(&x, &layer.merge().unwrap(), &g).unwrap();
        prop_assert!(via_tt.max_abs_diff(&via_dense).unwrap() < 1e-2);
    }

    #[test]
    fn ptt_merge_equals_forward_any_dims(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let i = 2 + rng.below(6);
        let o = 2 + rng.below(6);
        let r = 1 + rng.below(i.min(o));
        let hw = (4 + rng.below(4), 4 + rng.below(4));
        let layer = TtConv::randn(i, o, r, TtMode::Ptt, &mut rng);
        let x = Tensor::randn(&[1, i, hw.0, hw.1], &mut rng);
        let via_tt = layer.forward_tensor(&x, 0).unwrap();
        let g = Conv2dGeometry::new(i, o, hw, (3, 3), (1, 1), (1, 1));
        let via_dense = conv::conv2d(&x, &layer.merge().unwrap(), &g).unwrap();
        prop_assert!(via_tt.max_abs_diff(&via_dense).unwrap() < 1e-2);
    }

    #[test]
    fn decompose_exact_at_true_rank(seed in 0u64..300) {
        let mut rng = Rng::seed_from(seed);
        let i = 3 + rng.below(5);
        let o = 3 + rng.below(5);
        let r = 1 + rng.below(i.min(o).min(4));
        let truth = TtCores::randn(i, o, r, &mut rng);
        let dense = merge_stt(&truth).unwrap();
        let cores = decompose(&dense, r).unwrap();
        let rebuilt = merge_stt(&cores).unwrap();
        let scale = dense.norm().max(1e-6);
        prop_assert!(
            dense.sub(&rebuilt).unwrap().norm() / scale < 1e-2,
            "TT-SVD must be exact at the generating rank"
        );
    }

    #[test]
    fn ptt_corners_always_zero(seed in 0u64..300) {
        let mut rng = Rng::seed_from(seed);
        let i = 2 + rng.below(5);
        let o = 2 + rng.below(5);
        let r = 1 + rng.below(i.min(o));
        let cores = TtCores::randn(i, o, r, &mut rng);
        let merged = merge_ptt(&cores).unwrap();
        for oo in 0..o {
            for ii in 0..i {
                for (kh, kw) in [(0, 0), (0, 2), (2, 0), (2, 2)] {
                    prop_assert_eq!(merged.at(&[oo, ii, kh, kw]), 0.0);
                }
            }
        }
    }

    #[test]
    fn param_count_below_dense_for_small_rank(seed in 0u64..300) {
        let mut rng = Rng::seed_from(seed);
        let i = 8 + rng.below(24);
        let o = 8 + rng.below(24);
        let r = 1 + rng.below(i.min(o) / 4 + 1); // paper-like fraction
        let cores = TtCores::randn(i, o, r, &mut rng);
        prop_assert!(cores.num_params() < o * i * 9, "rank {} ({}, {})", r, i, o);
    }

    #[test]
    fn schedule_pattern_roundtrips(pattern in proptest::collection::vec(prop_oneof![Just('F'), Just('H')], 1..12)) {
        let s: String = pattern.iter().collect();
        let sched = HttSchedule::from_pattern(&s).unwrap();
        prop_assert_eq!(sched.to_string(), s.clone());
        prop_assert_eq!(sched.timesteps(), s.len());
        prop_assert_eq!(sched.num_full(), s.chars().filter(|&c| c == 'F').count());
    }

    #[test]
    fn htt_macs_at_most_ptt(seed in 0u64..200) {
        let mut rng = Rng::seed_from(seed);
        let i = 2 + rng.below(8);
        let o = 2 + rng.below(8);
        let r = 1 + rng.below(i.min(o));
        let t = 2 + rng.below(5);
        let ptt = TtConv::randn(i, o, r, TtMode::Ptt, &mut rng);
        let htt = TtConv::randn(i, o, r, TtMode::htt_default(t), &mut rng);
        let hw = (6, 6);
        let ptt_total: usize = (0..t).map(|s| ptt.macs(hw, s)).sum();
        let htt_total: usize = (0..t).map(|s| htt.macs(hw, s)).sum();
        prop_assert!(htt_total <= ptt_total);
    }
}

// ---------------------------------------------------------------------------
// Quantization properties (ISSUE 5 satellites): round-trip error bounds
// and per-channel vs per-tensor scale monotonicity.

mod quant_props {
    use proptest::prelude::*;
    use ttsnn_core::quant::{quantize_int8, quantize_int8_per_channel};
    use ttsnn_tensor::{Rng, Tensor};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// quantize → dequantize reconstructs every element within half a
        /// quantization step of its group's scale.
        #[test]
        fn round_trip_error_bounded_by_half_step(seed in 0u64..1000, spread in 0.1f32..20.0) {
            let mut rng = Rng::seed_from(seed);
            let c = 1 + rng.below(6);
            let k = 1 + rng.below(24);
            let t = Tensor::randn(&[c, k], &mut rng).scale(spread);
            let pt = quantize_int8(&t).unwrap();
            let back = pt.dequantize().unwrap();
            for (a, b) in t.data().iter().zip(back.data()) {
                prop_assert!((a - b).abs() <= pt.scale * 0.5 + 1e-6);
            }
            let pc = quantize_int8_per_channel(&t).unwrap();
            let back = pc.dequantize().unwrap();
            for (i, (a, b)) in t.data().iter().zip(back.data()).enumerate() {
                let s = pc.scales[i / k];
                prop_assert!((a - b).abs() <= s * 0.5 + 1e-6, "elem {}", i);
            }
        }

        /// Per-channel scales are never coarser than the per-tensor scale,
        /// so the per-element error bound only tightens.
        #[test]
        fn per_channel_scales_monotone_vs_per_tensor(seed in 0u64..1000) {
            let mut rng = Rng::seed_from(seed);
            let c = 1 + rng.below(8);
            let k = 1 + rng.below(32);
            let t = Tensor::randn(&[c, k], &mut rng);
            let pt = quantize_int8(&t).unwrap();
            let pc = quantize_int8_per_channel(&t).unwrap();
            for (ch, &s) in pc.scales.iter().enumerate() {
                prop_assert!(s <= pt.scale + 1e-12, "channel {}: {} > {}", ch, s, pt.scale);
            }
        }

        /// Scales are always positive and finite, whatever the input
        /// (finite) weights — including all-zero channels.
        #[test]
        fn scales_always_positive_finite(data in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let n = data.len();
            let t = Tensor::from_vec(data, &[n, 1]).unwrap();
            let pt = quantize_int8(&t).unwrap();
            prop_assert!(pt.scale > 0.0 && pt.scale.is_finite());
            let pc = quantize_int8_per_channel(&t).unwrap();
            for &s in &pc.scales {
                prop_assert!(s > 0.0 && s.is_finite());
            }
        }
    }
}
