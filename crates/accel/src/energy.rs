//! Per-operation energies at 28 nm and the energy breakdown container.
//!
//! Dynamic energies follow the usual published scalings (Horowitz ISSCC'14
//! numbers shrunk from 45 nm to 28 nm; CACTI-style SRAM access costs by
//! array size; LPDDR access ~100 pJ/B). The absolute values matter less
//! than their *ratios* — multiplier vs accumulate-only PEs, SRAM vs DRAM —
//! which drive every effect in Fig. 4. All values are picojoules.

use serde::{Deserialize, Serialize};

/// Per-op energy constants (pJ) and modeling factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One 8-bit multiply + 16-bit accumulate (the MAC of clusters 2–4,
    /// which process non-spike activations).
    pub mac_pj: f64,
    /// One 16-bit accumulate only (the simplified spike-input PEs of
    /// cluster 1 / the SATA baseline — "since the input is in the form of
    /// spikes, we simplified the arithmetic units").
    pub accumulate_pj: f64,
    /// Global-buffer SRAM access per byte.
    pub sram_pj_per_byte: f64,
    /// Register-file / scratch-pad access per byte (the third level of the
    /// memory hierarchy).
    pub rf_pj_per_byte: f64,
    /// Off-chip DRAM access per byte.
    pub dram_pj_per_byte: f64,
    /// Static (leakage) energy per cycle for the whole chip.
    pub static_pj_per_cycle: f64,
    /// Average spike activity (fraction of binary activations that are 1);
    /// spike-driven compute and spike traffic scale with it.
    pub spike_activity: f64,
    /// Backward-pass cost multiplier: BPTT's backward phase performs the
    /// transposed convolutions plus weight-gradient accumulation, ~2× the
    /// forward op count.
    pub backward_factor: f64,
    /// Bytes per non-spike activation (16-bit).
    pub activation_bytes: f64,
    /// Bytes per weight (8-bit, Table I multiplier precision).
    pub weight_bytes: f64,
}

impl EnergyModel {
    /// The default 28 nm calibration used for Fig. 4.
    pub fn nm28() -> Self {
        Self {
            mac_pj: 0.22,
            accumulate_pj: 0.03,
            sram_pj_per_byte: 1.2,
            rf_pj_per_byte: 0.08,
            dram_pj_per_byte: 100.0,
            static_pj_per_cycle: 45.0,
            spike_activity: 0.25,
            backward_factor: 2.0,
            activation_bytes: 2.0,
            weight_bytes: 1.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::nm28()
    }
}

/// Energy report for one training pass of one image (forward + backward
/// across all timesteps), in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Arithmetic (MAC/accumulate) energy.
    pub compute_pj: f64,
    /// Global-buffer + scratch-pad traffic energy.
    pub sram_pj: f64,
    /// Off-chip DRAM traffic energy.
    pub dram_pj: f64,
    /// Leakage energy (static power × runtime).
    pub static_pj: f64,
    /// Total runtime in cycles.
    pub cycles: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj + self.static_pj
    }

    /// Total energy in nanojoules (the unit of Fig. 4's y-axis).
    pub fn total_nj(&self) -> f64 {
        self.total_pj() / 1e3
    }

    /// Accumulates another breakdown (e.g. per-layer into per-network).
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.compute_pj += other.compute_pj;
        self.sram_pj += other.sram_pj;
        self.dram_pj += other.dram_pj;
        self.static_pj += other.static_pj;
        self.cycles += other.cycles;
    }

    /// Relative change versus a reference total: `(self - ref) / ref`.
    pub fn relative_to(&self, reference: &EnergyBreakdown) -> f64 {
        (self.total_pj() - reference.total_pj()) / reference.total_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_sane_ratios() {
        let m = EnergyModel::nm28();
        assert!(m.mac_pj > m.accumulate_pj, "multiplier must cost more than accumulate");
        assert!(m.dram_pj_per_byte > 10.0 * m.sram_pj_per_byte, "DRAM ≫ SRAM");
        assert!(m.sram_pj_per_byte > m.rf_pj_per_byte, "SRAM > scratch-pad");
        assert!((0.0..=1.0).contains(&m.spike_activity));
    }

    #[test]
    fn breakdown_totals_and_add() {
        let mut a = EnergyBreakdown {
            compute_pj: 1.0,
            sram_pj: 2.0,
            dram_pj: 3.0,
            static_pj: 4.0,
            cycles: 10.0,
        };
        assert_eq!(a.total_pj(), 10.0);
        assert_eq!(a.total_nj(), 0.01);
        let b = a;
        a.add(&b);
        assert_eq!(a.total_pj(), 20.0);
        assert_eq!(a.cycles, 20.0);
    }

    #[test]
    fn relative_to_signs() {
        let base = EnergyBreakdown { compute_pj: 100.0, ..Default::default() };
        let less = EnergyBreakdown { compute_pj: 40.0, ..Default::default() };
        assert!((less.relative_to(&base) + 0.6).abs() < 1e-12);
        assert!(base.relative_to(&less) > 0.0);
    }
}
