//! Serving health watchdog: a pure state machine the telemetry sampler
//! feeds one [`WatchdogSample`] per tick, producing a per-plan
//! [`HealthReport`] (`Healthy` / `Degraded` / `Unhealthy`).
//!
//! ## Detected conditions
//!
//! - **Queue stall** — queue depth > 0 with zero completions across
//!   [`WatchdogConfig::stall_samples`] consecutive ticks ⇒ `Unhealthy`.
//!   A wedged replica (or a deadlocked scheduler) shows up here even
//!   when heartbeats still tick.
//! - **Deadline-miss streak** — ticks with new expiries:
//!   [`WatchdogConfig::miss_streak_degraded`] consecutive ⇒ `Degraded`,
//!   [`WatchdogConfig::miss_streak_unhealthy`] ⇒ `Unhealthy`.
//! - **Eviction storm** — at least [`WatchdogConfig::eviction_storm`]
//!   session evictions in one tick ⇒ `Degraded` (session capacity is
//!   thrashing).
//! - **Stale heartbeat** — a replica that hasn't pulled work for
//!   [`WatchdogConfig::heartbeat_stale`] while requests are outstanding
//!   ⇒ `Degraded`; twice that ⇒ `Unhealthy`. Idle replicas (nothing
//!   outstanding) never trip this.
//!
//! ## Hysteresis
//!
//! The worst firing condition wins **immediately** on the way up; on
//! the way down the state steps one level per
//! [`WatchdogConfig::recovery_samples`] consecutive clean ticks
//! (`Unhealthy → Degraded → Healthy`), so health can't flap on a
//! single good sample.

use std::time::Duration;

/// Per-plan health, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// All conditions clear.
    Healthy,
    /// Serving, but impaired (misses, eviction storm, stale replica).
    Degraded,
    /// Not meeting its contract; `/healthz` answers 503.
    Unhealthy,
}

impl HealthState {
    /// Stable lowercase label (`healthy` / `degraded` / `unhealthy`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Unhealthy => "unhealthy",
        }
    }

    /// Numeric code for the `ttsnn_health_state` gauge: 0 / 1 / 2.
    pub fn code(self) -> u64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Unhealthy => 2,
        }
    }

    fn step_down(self) -> HealthState {
        match self {
            HealthState::Unhealthy => HealthState::Degraded,
            _ => HealthState::Healthy,
        }
    }
}

/// Watchdog thresholds. Defaults suit the default 5 s sampler tick;
/// tests and fast-tick deployments shrink them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Consecutive no-completion ticks (with queue depth > 0) before a
    /// stall is declared.
    pub stall_samples: usize,
    /// Consecutive ticks with new deadline misses before `Degraded`.
    pub miss_streak_degraded: usize,
    /// Consecutive ticks with new deadline misses before `Unhealthy`.
    pub miss_streak_unhealthy: usize,
    /// Session evictions in a single tick that count as a storm.
    pub eviction_storm: u64,
    /// A replica heartbeat older than this (with work outstanding) is
    /// stale; twice this is `Unhealthy`.
    pub heartbeat_stale: Duration,
    /// Consecutive clean ticks before stepping down one health level.
    pub recovery_samples: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_samples: 3,
            miss_streak_degraded: 2,
            miss_streak_unhealthy: 5,
            eviction_storm: 8,
            heartbeat_stale: Duration::from_secs(10),
            recovery_samples: 2,
        }
    }
}

/// One tick's observation of a plan, distilled from `ClusterMetrics`.
/// Counter fields are **cumulative**; the watchdog derives deltas.
#[derive(Debug, Clone, Default)]
pub struct WatchdogSample {
    /// Jobs waiting in the scheduler queue.
    pub queue_depth: usize,
    /// Jobs admitted but not yet terminal.
    pub outstanding: usize,
    /// Cumulative terminal transitions (served + expired + failed +
    /// cancelled, stream chunks included).
    pub completions: u64,
    /// Cumulative deadline expiries.
    pub deadline_misses: u64,
    /// Cumulative session evictions.
    pub evictions: u64,
    /// Per-replica age of the last scheduler-loop heartbeat (`None`
    /// before a replica's first pull).
    pub heartbeat_age: Vec<Option<Duration>>,
}

/// A watchdog verdict: the state plus a human-readable reason (empty
/// when healthy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Current health.
    pub state: HealthState,
    /// What tripped (or is still recovering), empty when healthy.
    pub reason: String,
}

impl HealthReport {
    /// A healthy report with no reason.
    pub fn healthy() -> Self {
        HealthReport { state: HealthState::Healthy, reason: String::new() }
    }
}

/// The per-plan health state machine. Feed it one sample per tick via
/// [`Watchdog::observe`].
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    prev: Option<(u64, u64, u64)>, // completions, misses, evictions
    stall_run: usize,
    miss_run: usize,
    clean_run: usize,
    state: HealthState,
    reason: String,
}

impl Watchdog {
    /// A fresh (healthy) watchdog.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            prev: None,
            stall_run: 0,
            miss_run: 0,
            clean_run: 0,
            state: HealthState::Healthy,
            reason: String::new(),
        }
    }

    /// Current health without observing a new sample.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Ingests one tick's sample and returns the updated report.
    pub fn observe(&mut self, s: &WatchdogSample) -> HealthReport {
        let (completion_delta, miss_delta, eviction_delta) = match self.prev {
            // Counter resets (restart) clamp to "no progress observed".
            Some((pc, pm, pe)) => (
                s.completions.saturating_sub(pc),
                s.deadline_misses.saturating_sub(pm),
                s.evictions.saturating_sub(pe),
            ),
            None => (0, 0, 0),
        };
        let first = self.prev.is_none();
        self.prev = Some((s.completions, s.deadline_misses, s.evictions));

        // Track condition runs.
        if !first && s.queue_depth > 0 && completion_delta == 0 {
            self.stall_run += 1;
        } else {
            self.stall_run = 0;
        }
        if miss_delta > 0 {
            self.miss_run += 1;
        } else {
            self.miss_run = 0;
        }

        // Evaluate conditions, worst first.
        let mut target = HealthState::Healthy;
        let mut reason = String::new();
        // Conditions are evaluated worst-first, so the first to raise a
        // level owns the reason.
        let mut raise = |st: HealthState, why: String| {
            if st > target {
                target = st;
                reason = why;
            }
        };
        if self.stall_run >= self.cfg.stall_samples {
            raise(
                HealthState::Unhealthy,
                format!(
                    "queue stalled: depth {} with no completions across {} samples",
                    s.queue_depth, self.stall_run
                ),
            );
        }
        if self.miss_run >= self.cfg.miss_streak_unhealthy {
            raise(
                HealthState::Unhealthy,
                format!(
                    "deadline-miss streak: {} consecutive samples with expiries",
                    self.miss_run
                ),
            );
        } else if self.miss_run >= self.cfg.miss_streak_degraded {
            raise(
                HealthState::Degraded,
                format!(
                    "deadline-miss streak: {} consecutive samples with expiries",
                    self.miss_run
                ),
            );
        }
        if !first && eviction_delta >= self.cfg.eviction_storm {
            raise(
                HealthState::Degraded,
                format!("eviction storm: {eviction_delta} sessions evicted in one sample"),
            );
        }
        if s.outstanding > 0 {
            let stalest = s
                .heartbeat_age
                .iter()
                .enumerate()
                .filter_map(|(i, a)| a.map(|a| (i, a)))
                .max_by_key(|&(_, a)| a);
            if let Some((replica, age)) = stalest {
                if age >= self.cfg.heartbeat_stale.saturating_mul(2) {
                    raise(
                        HealthState::Unhealthy,
                        format!("replica {replica} heartbeat stale for {:.1}s", age.as_secs_f64()),
                    );
                } else if age >= self.cfg.heartbeat_stale {
                    raise(
                        HealthState::Degraded,
                        format!("replica {replica} heartbeat stale for {:.1}s", age.as_secs_f64()),
                    );
                }
            }
        }

        // Worst condition wins immediately; recovery steps down one
        // level per `recovery_samples` clean ticks.
        if target >= self.state {
            self.state = target;
            self.reason = reason;
            self.clean_run = 0;
        } else {
            self.clean_run += 1;
            if self.clean_run >= self.cfg.recovery_samples {
                self.state = self.state.step_down();
                self.clean_run = 0;
                self.reason = if self.state == HealthState::Healthy {
                    String::new()
                } else if reason.is_empty() {
                    format!("recovering: {}", self.reason)
                } else {
                    reason
                };
            } else if !reason.is_empty() {
                self.reason = reason;
            }
        }
        HealthReport { state: self.state, reason: self.reason.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            stall_samples: 3,
            miss_streak_degraded: 2,
            miss_streak_unhealthy: 4,
            eviction_storm: 5,
            heartbeat_stale: Duration::from_secs(1),
            recovery_samples: 2,
        }
    }

    fn sample(depth: usize, completions: u64) -> WatchdogSample {
        WatchdogSample { queue_depth: depth, completions, ..Default::default() }
    }

    #[test]
    fn quiet_samples_stay_healthy() {
        let mut dog = Watchdog::new(cfg());
        for i in 0..10 {
            let r = dog.observe(&sample(0, i * 3));
            assert_eq!(r.state, HealthState::Healthy);
            assert!(r.reason.is_empty());
        }
    }

    #[test]
    fn stall_requires_n_consecutive_samples() {
        let mut dog = Watchdog::new(cfg());
        dog.observe(&sample(4, 10));
        // Two stalled ticks: not yet.
        assert_eq!(dog.observe(&sample(4, 10)).state, HealthState::Healthy);
        assert_eq!(dog.observe(&sample(4, 10)).state, HealthState::Healthy);
        // Third trips it.
        let r = dog.observe(&sample(4, 10));
        assert_eq!(r.state, HealthState::Unhealthy);
        assert!(r.reason.contains("queue stalled"), "{}", r.reason);
        // A completion breaks the run... but recovery is hysteretic.
        let r = dog.observe(&sample(2, 11));
        assert_eq!(r.state, HealthState::Unhealthy, "one clean tick is not enough");
        let r = dog.observe(&sample(0, 12));
        assert_eq!(r.state, HealthState::Degraded, "steps down one level");
        dog.observe(&sample(0, 13));
        let r = dog.observe(&sample(0, 14));
        assert_eq!(r.state, HealthState::Healthy);
        assert!(r.reason.is_empty());
    }

    #[test]
    fn progress_with_deep_queue_is_not_a_stall() {
        let mut dog = Watchdog::new(cfg());
        for i in 0..10 {
            let r = dog.observe(&sample(100, i));
            assert_eq!(r.state, HealthState::Healthy, "tick {i}");
        }
    }

    #[test]
    fn miss_streak_escalates_then_recovers() {
        let mut dog = Watchdog::new(cfg());
        let tick = |dog: &mut Watchdog, misses: u64, completions: u64| {
            dog.observe(&WatchdogSample {
                completions,
                deadline_misses: misses,
                ..Default::default()
            })
        };
        tick(&mut dog, 0, 1);
        assert_eq!(tick(&mut dog, 2, 2).state, HealthState::Healthy, "one missy tick");
        let r = tick(&mut dog, 5, 3);
        assert_eq!(r.state, HealthState::Degraded);
        assert!(r.reason.contains("deadline-miss streak"), "{}", r.reason);
        tick(&mut dog, 9, 4);
        let r = tick(&mut dog, 12, 5);
        assert_eq!(r.state, HealthState::Unhealthy, "4 consecutive missy ticks");
        // Misses stop: two clean ticks per level down.
        tick(&mut dog, 12, 6);
        assert_eq!(tick(&mut dog, 12, 7).state, HealthState::Degraded);
        tick(&mut dog, 12, 8);
        assert_eq!(tick(&mut dog, 12, 9).state, HealthState::Healthy);
    }

    #[test]
    fn eviction_storm_degrades_for_one_burst() {
        let mut dog = Watchdog::new(cfg());
        dog.observe(&WatchdogSample { evictions: 0, ..Default::default() });
        let r = dog.observe(&WatchdogSample { evictions: 6, ..Default::default() });
        assert_eq!(r.state, HealthState::Degraded);
        assert!(r.reason.contains("eviction storm"), "{}", r.reason);
        // Slow eviction drip below the storm threshold is fine.
        let mut dog = Watchdog::new(cfg());
        for i in 0..10u64 {
            let r = dog.observe(&WatchdogSample { evictions: i * 2, ..Default::default() });
            assert_eq!(r.state, HealthState::Healthy);
        }
    }

    #[test]
    fn stale_heartbeat_only_matters_with_work_outstanding() {
        let mut dog = Watchdog::new(cfg());
        let stale = Some(Duration::from_secs(3));
        // Idle: stale heartbeat ignored.
        let r = dog.observe(&WatchdogSample {
            outstanding: 0,
            heartbeat_age: vec![stale],
            ..Default::default()
        });
        assert_eq!(r.state, HealthState::Healthy);
        // Outstanding work + >2× stale: unhealthy immediately.
        let r = dog.observe(&WatchdogSample {
            outstanding: 2,
            heartbeat_age: vec![Some(Duration::from_millis(100)), stale],
            ..Default::default()
        });
        assert_eq!(r.state, HealthState::Unhealthy);
        assert!(r.reason.contains("replica 1"), "{}", r.reason);
        // Mildly stale would only degrade.
        let mut dog = Watchdog::new(cfg());
        let r = dog.observe(&WatchdogSample {
            outstanding: 1,
            heartbeat_age: vec![Some(Duration::from_millis(1500))],
            ..Default::default()
        });
        assert_eq!(r.state, HealthState::Degraded);
    }

    #[test]
    fn counter_reset_does_not_fake_progress_or_misses() {
        let mut dog = Watchdog::new(cfg());
        dog.observe(&WatchdogSample {
            completions: 100,
            deadline_misses: 50,
            ..Default::default()
        });
        // Restart: counters drop to small values. saturating_sub clamps
        // deltas to 0 — no phantom miss streak, and a stalled queue
        // still counts from scratch.
        let r = dog.observe(&WatchdogSample {
            completions: 2,
            deadline_misses: 1,
            queue_depth: 1,
            ..Default::default()
        });
        assert_eq!(r.state, HealthState::Healthy);
    }

    #[test]
    fn health_state_order_and_codes() {
        assert!(HealthState::Unhealthy > HealthState::Degraded);
        assert!(HealthState::Degraded > HealthState::Healthy);
        assert_eq!(HealthState::Healthy.code(), 0);
        assert_eq!(HealthState::Degraded.code(), 1);
        assert_eq!(HealthState::Unhealthy.code(), 2);
        assert_eq!(HealthState::Unhealthy.as_str(), "unhealthy");
    }
}
