//! Property tests for the parallel runtime kernels: the GEMM family and
//! the batch-parallel convolution pipeline must match naive references
//! within 1e-5 across odd shapes, and be **deterministic across thread
//! counts** (1–8 threads).

use proptest::prelude::*;
use ttsnn_tensor::runtime::{self, Runtime};
use ttsnn_tensor::{conv, matmul_into, Conv2dGeometry, Rng, Tensor};

/// The ISSUE's shape grid: every m/k/n combination from {1, 3, 17, 64}.
const DIMS: [usize; 4] = [1, 3, 17, 64];

fn randv(len: usize, rng: &mut Rng) -> Vec<f32> {
    (0..len).map(|_| rng.normal()).collect()
}

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

#[test]
fn gemm_matches_reference_on_shape_grid_across_threads() {
    let mut rng = Rng::seed_from(1);
    for &m in &DIMS {
        for &k in &DIMS {
            for &n in &DIMS {
                let a = randv(m * k, &mut rng);
                let b = randv(k * n, &mut rng);
                let mut want = vec![0.0; m * n];
                runtime::reference_gemm(&a, &b, &mut want, m, k, n);
                // The seed kernel is a second, independent oracle.
                let mut seed = vec![0.0; m * n];
                matmul_into(&a, &b, &mut seed, m, k, n);
                assert!(max_diff(&seed, &want) < 1e-4 * k as f32, "seed vs naive ({m},{k},{n})");
                for threads in 1..=8 {
                    let mut got = vec![f32::NAN; m * n];
                    runtime::gemm(&Runtime::new(threads), &a, &b, &mut got, m, k, n);
                    assert!(
                        max_diff(&got, &want) < 1e-5 * (k as f32).max(1.0),
                        "gemm ({m},{k},{n}) threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn transpose_variants_match_reference_on_shape_grid() {
    let mut rng = Rng::seed_from(2);
    for &m in &DIMS {
        for &k in &DIMS {
            for &n in &DIMS {
                let a = randv(m * k, &mut rng); // logical A (m,k)
                let b = randv(k * n, &mut rng); // logical B (k,n)
                let mut want = vec![0.0; m * n];
                runtime::reference_gemm(&a, &b, &mut want, m, k, n);
                // Store Aᵀ as (k,m) and Bᵀ as (n,k).
                let mut at = vec![0.0; k * m];
                for i in 0..m {
                    for kk in 0..k {
                        at[kk * m + i] = a[i * k + kk];
                    }
                }
                let mut bt = vec![0.0; n * k];
                for kk in 0..k {
                    for j in 0..n {
                        bt[j * k + kk] = b[kk * n + j];
                    }
                }
                for threads in [1usize, 2, 3, 5, 8] {
                    let rt = Runtime::new(threads);
                    let mut got = vec![f32::NAN; m * n];
                    runtime::gemm_at_b(&rt, &at, &b, &mut got, m, k, n);
                    assert!(
                        max_diff(&got, &want) < 1e-5 * (k as f32).max(1.0),
                        "gemm_at_b ({m},{k},{n}) threads={threads}"
                    );
                    let mut got = vec![f32::NAN; m * n];
                    runtime::gemm_a_bt(&rt, &a, &bt, &mut got, m, k, n);
                    assert!(
                        max_diff(&got, &want) < 1e-5 * (k as f32).max(1.0),
                        "gemm_a_bt ({m},{k},{n}) threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn gemm_family_bitwise_deterministic_across_threads() {
    let mut rng = Rng::seed_from(3);
    for &(m, k, n) in &[(17, 64, 3), (64, 17, 64), (5, 129, 33)] {
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let at = randv(k * m, &mut rng);
        let bt = randv(n * k, &mut rng);
        let mut base = vec![0.0; m * n];
        let mut base_atb = vec![0.0; m * n];
        let mut base_abt = vec![0.0; m * n];
        runtime::gemm(&Runtime::new(1), &a, &b, &mut base, m, k, n);
        runtime::gemm_at_b(&Runtime::new(1), &at, &b, &mut base_atb, m, k, n);
        runtime::gemm_a_bt(&Runtime::new(1), &a, &bt, &mut base_abt, m, k, n);
        for threads in 2..=8 {
            let rt = Runtime::new(threads);
            let mut out = vec![0.0; m * n];
            runtime::gemm(&rt, &a, &b, &mut out, m, k, n);
            assert_eq!(out, base, "gemm bits differ at {threads} threads");
            runtime::gemm_at_b(&rt, &at, &b, &mut out, m, k, n);
            assert_eq!(out, base_atb, "gemm_at_b bits differ at {threads} threads");
            runtime::gemm_a_bt(&rt, &a, &bt, &mut out, m, k, n);
            assert_eq!(out, base_abt, "gemm_a_bt bits differ at {threads} threads");
        }
    }
}

/// Direct (sextuple-loop) convolution oracle.
fn conv2d_naive(x: &Tensor, w: &Tensor, g: &Conv2dGeometry) -> Tensor {
    let b = x.shape()[0];
    let (oh, ow) = g.out_hw();
    let mut y = Tensor::zeros(&[b, g.out_channels, oh, ow]);
    for s in 0..b {
        for o in 0..g.out_channels {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0;
                    for c in 0..g.in_channels {
                        for ki in 0..g.kernel.0 {
                            for kj in 0..g.kernel.1 {
                                let ii = (oi * g.stride.0 + ki) as isize - g.padding.0 as isize;
                                let jj = (oj * g.stride.1 + kj) as isize - g.padding.1 as isize;
                                if ii >= 0
                                    && jj >= 0
                                    && (ii as usize) < g.in_hw.0
                                    && (jj as usize) < g.in_hw.1
                                {
                                    acc += x.at(&[s, c, ii as usize, jj as usize])
                                        * w.at(&[o, c, ki, kj]);
                                }
                            }
                        }
                    }
                    *y.at_mut(&[s, o, oi, oj]) = acc;
                }
            }
        }
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch-parallel conv forward matches the naive oracle for random
    /// geometries, including the TT cores' asymmetric kernels.
    #[test]
    fn conv_forward_matches_naive(seed in 0u64..10_000, batch in 1usize..6) {
        let mut rng = Rng::seed_from(seed);
        let kernels = [((3usize, 3usize), (1usize, 1usize)), ((3, 1), (1, 0)), ((1, 3), (0, 1)), ((1, 1), (0, 0))];
        let (kernel, padding) = kernels[(seed % 4) as usize];
        let g = Conv2dGeometry::new(3, 4, (7, 6), kernel, (1, 1), padding);
        let x = Tensor::randn(&[batch, 3, 7, 6], &mut rng);
        let w = Tensor::randn(&[4, 3, kernel.0, kernel.1], &mut rng);
        let fast = conv::conv2d(&x, &w, &g).unwrap();
        let slow = conv2d_naive(&x, &w, &g);
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4, "kernel {kernel:?} batch {batch}");
    }

    /// The whole conv pipeline (forward, input grad, weight grad) is
    /// bitwise deterministic across 1–8 threads: the batch-parallel
    /// partition never splits one sample's accumulation, and the batch
    /// reduction runs in fixed sample order.
    #[test]
    fn conv_pipeline_deterministic_across_threads(seed in 0u64..10_000, batch in 1usize..6) {
        let mut rng = Rng::seed_from(seed);
        let g = Conv2dGeometry::new(2, 3, (5, 5), (3, 3), (1, 1), (1, 1));
        let x = Tensor::randn(&[batch, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let dy = Tensor::randn(&[batch, 3, 5, 5], &mut rng);
        let one = Runtime::new(1);
        let y1 = conv::conv2d_with(&one, &x, &w, &g).unwrap();
        let dx1 = conv::conv2d_input_grad_with(&one, &dy, &w, &g).unwrap();
        let dw1 = conv::conv2d_weight_grad_with(&one, &x, &dy, &g).unwrap();
        for threads in 2..=8 {
            let rt = Runtime::new(threads);
            let y = conv::conv2d_with(&rt, &x, &w, &g).unwrap();
            prop_assert_eq!(y.data(), y1.data(), "forward bits differ at {} threads", threads);
            let dx = conv::conv2d_input_grad_with(&rt, &dy, &w, &g).unwrap();
            prop_assert_eq!(dx.data(), dx1.data(), "dx bits differ at {} threads", threads);
            let dw = conv::conv2d_weight_grad_with(&rt, &x, &dy, &g).unwrap();
            prop_assert_eq!(dw.data(), dw1.data(), "dw bits differ at {} threads", threads);
        }
    }
}
