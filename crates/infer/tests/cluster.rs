//! Serving-cluster determinism, cancellation, deadline and backpressure
//! tests.
//!
//! The headline property extends the engine's contract to replicas: a
//! request's logits are **bit-identical** whatever the replica count, the
//! scheduling order, the priority mix, or which other requests were
//! cancelled mid-flight — and equal to a batch-of-1 pass through the
//! training plane of the same checkpoint. CI re-runs this suite under
//! `TTSNN_NUM_THREADS=2` and under `TTSNN_NUM_REPLICAS=1`/`3` (the
//! env-default test picks the replica count up from the environment).

use std::time::Duration;

use proptest::prelude::*;
use ttsnn_core::TtMode;
use ttsnn_infer::{
    ArchSpec, BatchPolicy, Cluster, ClusterConfig, EngineConfig, InferError, Priority, SubmitError,
    SubmitOptions,
};
use ttsnn_snn::{checkpoint, ConvPolicy, SpikingModel, TrainForward, VggConfig, VggSnn};
use ttsnn_tensor::{Rng, Tensor};
use ttsnn_testutil::{drained_metrics, vgg9_tiny as vgg_cfg, vgg_checkpoint};

const T: usize = 2;

fn samples(seed: u64, n: usize) -> Vec<Tensor> {
    ttsnn_testutil::samples(seed ^ 0x5A5A, n)
}

/// Reference: the training plane on a batch of one — per-sample summed
/// logits under direct coding.
fn train_plane_reference(model: &mut impl TrainForward, sample: &Tensor) -> Tensor {
    ttsnn_testutil::train_plane_reference(model, sample, T)
}

fn cluster_config(
    policy: ConvPolicy,
    replicas: usize,
    max_batch: usize,
    max_wait: Duration,
) -> ClusterConfig {
    ttsnn_testutil::vgg_cluster_config(policy, T, replicas, max_batch, max_wait)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The acceptance property: per-sample outputs are bit-identical
    /// across 1..=3 replicas × random priority assignment × random
    /// cancellation interleavings, and every request is accounted for.
    #[test]
    fn replica_priority_and_cancellation_invariance(seed in 0u64..500) {
        let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::tt(TtMode::Ptt), seed);
        let inputs = samples(seed, 8);
        let expected: Vec<Tensor> = inputs
            .iter()
            .map(|s| train_plane_reference(&mut reference_model, s))
            .collect();
        let mut mix = Rng::seed_from(seed ^ 0xC0FFEE);
        for replicas in 1..=3usize {
            let cluster = Cluster::load(
                cluster_config(ConvPolicy::tt(TtMode::Ptt), replicas, 3, Duration::from_millis(10)),
                ckpt.as_slice(),
            )
            .unwrap();
            prop_assert_eq!(cluster.replicas(), replicas);
            let session = cluster.session();
            // Random priorities and (generous, never-expiring) deadlines.
            let tickets: Vec<_> = inputs
                .iter()
                .map(|s| {
                    let prio = Priority::ALL[mix.uniform_in(0.0, 3.0) as usize % 3];
                    let opts = if mix.uniform_in(0.0, 1.0) < 0.5 {
                        SubmitOptions::priority(prio)
                            .with_deadline(Duration::from_secs(120))
                    } else {
                        SubmitOptions::priority(prio)
                    };
                    session.submit_with(s.clone(), opts).unwrap()
                })
                .collect();
            // Cancel a random subset mid-flight: some will be reaped
            // queued (counted cancelled), some already executed (counted
            // served) — the interleaving is the test.
            let mut survivors = Vec::new();
            for (i, ticket) in tickets.into_iter().enumerate() {
                if mix.uniform_in(0.0, 1.0) < 0.3 {
                    drop(ticket); // cancel
                } else {
                    survivors.push((i, ticket));
                }
            }
            for (i, ticket) in survivors {
                let got = ticket.wait().unwrap();
                prop_assert_eq!(
                    &got, &expected[i],
                    "sample {} diverged under {} replicas (scheduling must be invisible)",
                    i, replicas
                );
            }
            let m = drained_metrics(&cluster);
            let t = m.totals();
            prop_assert_eq!(t.submitted, inputs.len() as u64);
            prop_assert_eq!(t.expired + t.failed, 0);
            // Executor time is only spent on served requests.
            let batched: u64 = m.batch_sizes.buckets().iter().map(|(_, c)| c).sum();
            prop_assert_eq!(batched, m.batches_executed);
            prop_assert!(m.latency.count() == t.served);
        }
    }
}

/// Replica count from the environment (the CI matrix sets
/// `TTSNN_NUM_REPLICAS=1`/`3`): same bits as the training plane.
#[test]
fn env_default_replica_count_serves_identically() {
    let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::Baseline, 21);
    let inputs = samples(21, 6);
    let config = ClusterConfig::new(
        EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::Baseline, T)
            .with_batching(BatchPolicy { max_batch: 4, max_wait: Duration::from_millis(10) }),
    );
    assert_eq!(config.num_replicas, ClusterConfig::replicas_from_env());
    let cluster = Cluster::load(config, ckpt.as_slice()).unwrap();
    let session = cluster.session();
    let tickets: Vec<_> = inputs.iter().map(|s| session.submit(s.clone()).unwrap()).collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(
            ticket.wait().unwrap(),
            train_plane_reference(&mut reference_model, &inputs[i]),
            "request {i} diverged under the env-default replica count"
        );
    }
}

/// The acceptance guarantee for cancellation, constructed deterministically:
/// the batch cannot start executing before `max_batch` admissions or the
/// (generous) collection window closes, and the cancel lands milliseconds
/// into that window — so whether the scheduler reaps the dropped request
/// at pop time or at the pre-execution re-check, it is counted cancelled,
/// never executed, and the three survivors ride **one** batch.
#[test]
fn dropped_queued_ticket_is_cancelled_and_never_executed() {
    let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::Baseline, 31);
    let inputs = samples(31, 4);
    let cluster = Cluster::load(
        cluster_config(ConvPolicy::Baseline, 1, 4, Duration::from_millis(500)),
        ckpt.as_slice(),
    )
    .unwrap();
    let session = cluster.session();
    let t0 = session.submit(inputs[0].clone()).unwrap();
    let t1 = session.submit(inputs[1].clone()).unwrap();
    let t2 = session.submit(inputs[2].clone()).unwrap();
    // Cancel #1 while the batch is provably still collecting (it needs a
    // 4th live request or the 500 ms window to close), then submit the
    // last request: the cancel happened-before any possible execution.
    drop(t1);
    let t3 = session.submit(inputs[3].clone()).unwrap();
    for (i, ticket) in [(0usize, t0), (2, t2), (3, t3)] {
        assert_eq!(
            ticket.wait().unwrap(),
            train_plane_reference(&mut reference_model, &inputs[i]),
            "survivor {i} diverged after a co-traveller was cancelled"
        );
    }
    let m = drained_metrics(&cluster);
    let t = m.totals();
    assert_eq!(t.cancelled, 1, "the dropped queued ticket must be counted cancelled");
    assert_eq!(t.served, 3);
    assert_eq!(m.batches_executed, 1, "cancellation must not fragment the batch");
    assert_eq!(
        m.batch_sizes.buckets().iter().map(|(_, c)| c).sum::<u64>(),
        1,
        "exactly one forward pass — the cancelled request consumed no executor time"
    );
    // That single executed batch held exactly the three survivors.
    assert_eq!(m.batch_sizes.quantile(1.0), 4.0, "batch of 3 lands in the (2,4] bucket");
}

/// A deadline bounds queueing delay: a request still waiting in an open
/// batch when its deadline passes is dropped with `DeadlineExpired` and
/// never executed; its co-travellers are unaffected.
#[test]
fn queued_deadline_expiry_is_observable_and_skips_execution() {
    let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::Baseline, 41);
    let inputs = samples(41, 3);
    let cluster = Cluster::load(
        cluster_config(ConvPolicy::Baseline, 1, 3, Duration::from_millis(500)),
        ckpt.as_slice(),
    )
    .unwrap();
    let session = cluster.session();
    let t0 = session.submit(inputs[0].clone()).unwrap();
    let doomed = session
        .submit_with(
            inputs[1].clone(),
            SubmitOptions::priority(Priority::High).with_deadline(Duration::from_millis(15)),
        )
        .unwrap();
    // Hold the batch open past the deadline, then close it.
    std::thread::sleep(Duration::from_millis(30));
    let t2 = session.submit(inputs[2].clone()).unwrap();
    assert_eq!(doomed.wait(), Err(InferError::DeadlineExpired));
    for (i, ticket) in [(0usize, t0), (2, t2)] {
        assert_eq!(
            ticket.wait().unwrap(),
            train_plane_reference(&mut reference_model, &inputs[i]),
            "survivor {i} diverged after a co-traveller expired"
        );
    }
    let m = drained_metrics(&cluster);
    assert_eq!(m.priority(Priority::High).expired, 1);
    assert_eq!(m.totals().served, 2);
    assert_eq!(m.batches_executed, 1);
}

/// The bounded queue pushes back: outstanding (not-yet-finished) requests
/// saturate `try_submit` deterministically — the two parked requests
/// cannot finish while their batch waits for a third that never arrives.
#[test]
fn try_submit_reports_saturation_and_shutdown_serves_admitted_work() {
    let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::Baseline, 51);
    let inputs = samples(51, 3);
    let cluster = Cluster::load(
        cluster_config(ConvPolicy::Baseline, 1, 3, Duration::MAX).with_queue_capacity(2),
        ckpt.as_slice(),
    )
    .unwrap();
    let session = cluster.session();
    let t0 = session.try_submit(inputs[0].clone()).unwrap();
    let t1 = session.try_submit(inputs[1].clone()).unwrap();
    match session.try_submit(inputs[2].clone()) {
        Err(SubmitError::Saturated(_)) => {}
        other => panic!("expected Saturated, got {:?}", other.map(|_| ())),
    }
    assert_eq!(cluster.metrics().outstanding, 2);
    // Shutdown semantics mirror the engine: a batch the replica already
    // *admitted* is still served; requests still sitting in the queue are
    // dropped and their tickets hang up. Which side of that line the two
    // requests land on is a race with the replica's pop — but there is no
    // third outcome: a ticket either resolves with the exact training-plane
    // bits or reports EngineClosed.
    drop(cluster);
    for (i, ticket) in [t0, t1].into_iter().enumerate() {
        match ticket.wait() {
            Ok(got) => assert_eq!(
                got,
                train_plane_reference(&mut reference_model, &inputs[i]),
                "request {i} served through shutdown must not diverge"
            ),
            Err(e) => assert_eq!(e, InferError::EngineClosed),
        }
    }
}

#[test]
fn sessions_outliving_the_cluster_report_closed() {
    let (ckpt, _) = vgg_checkpoint(&ConvPolicy::Baseline, 61);
    let session = {
        let cluster = Cluster::load(
            cluster_config(ConvPolicy::Baseline, 2, 4, Duration::from_millis(5)),
            ckpt.as_slice(),
        )
        .unwrap();
        cluster.session()
    };
    assert_eq!(
        session.submit(samples(61, 1).remove(0)).map(|_| ()).unwrap_err(),
        SubmitError::Closed
    );
    assert_eq!(session.infer(samples(61, 1).remove(0)), Err(InferError::EngineClosed));
}

#[test]
fn bad_inputs_fail_their_own_ticket_only() {
    let (ckpt, mut reference_model) = vgg_checkpoint(&ConvPolicy::Baseline, 71);
    let cluster = Cluster::load(
        cluster_config(ConvPolicy::Baseline, 2, 4, Duration::from_millis(20)),
        ckpt.as_slice(),
    )
    .unwrap();
    let session = cluster.session();
    let good_input = samples(71, 1).remove(0);
    let good = session.submit(good_input.clone()).unwrap();
    let bad = session.submit(Tensor::zeros(&[2, 8, 8])).unwrap(); // wrong channels
    assert_eq!(
        good.wait().unwrap(),
        train_plane_reference(&mut reference_model, &good_input),
        "good request must survive a bad co-traveller"
    );
    match bad.wait() {
        Err(InferError::Shape(msg)) => assert!(msg.contains("does not match the plan"), "{msg}"),
        other => panic!("expected shape error, got {other:?}"),
    }
    assert_eq!(drained_metrics(&cluster).totals().failed, 1);
}

/// The merged-dense deployment pipeline works replicated: replicas must
/// rebuild the *merged* structure before aliasing the shared weights.
#[test]
fn merged_plans_serve_identically_across_replicas() {
    let (ckpt, _) = vgg_checkpoint(&ConvPolicy::tt(TtMode::Ptt), 81);
    let base = EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::tt(TtMode::Ptt), T)
        .merged()
        .with_batching(BatchPolicy { max_batch: 2, max_wait: Duration::from_millis(5) });
    let x = samples(81, 1).remove(0);
    let solo =
        Cluster::load(ClusterConfig::new(base.clone()).with_replicas(1), ckpt.as_slice()).unwrap();
    assert_eq!(solo.info().merged_layers, 5);
    let expected = solo.session().infer(x.clone()).unwrap();
    drop(solo);
    let trio = Cluster::load(ClusterConfig::new(base).with_replicas(3), ckpt.as_slice()).unwrap();
    let session = trio.session();
    let tickets: Vec<_> = (0..6).map(|_| session.submit(x.clone()).unwrap()).collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap(), expected, "merged plan diverged across replicas");
    }
}

#[test]
fn load_rejects_invalid_configs() {
    let (ckpt, _) = vgg_checkpoint(&ConvPolicy::Baseline, 91);
    let engine_cfg = EngineConfig::new(ArchSpec::Vgg(vgg_cfg()), ConvPolicy::Baseline, T);

    // max_batch == 0 used to be silently clamped; it must now be rejected
    // up front — by the engine and the cluster alike.
    let zero_batch =
        engine_cfg.clone().with_batching(BatchPolicy { max_batch: 0, max_wait: Duration::ZERO });
    let err =
        ttsnn_infer::Engine::load(zero_batch.clone(), ckpt.as_slice()).map(|_| ()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("max_batch"), "{err}");
    let err =
        Cluster::load(ClusterConfig::new(zero_batch), ckpt.as_slice()).map(|_| ()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("max_batch"), "{err}");

    for bad in [
        ClusterConfig::new(engine_cfg.clone()).with_replicas(0),
        ClusterConfig::new(engine_cfg).with_queue_capacity(0),
    ] {
        let err = Cluster::load(bad, ckpt.as_slice()).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}

#[test]
fn load_rejects_mismatched_checkpoint_on_any_replica_path() {
    let mut rng = Rng::seed_from(5);
    let wrong = VggSnn::new(VggConfig::vgg9(3, 7, (8, 8), 8), &ConvPolicy::Baseline, &mut rng);
    let mut ckpt = Vec::new();
    checkpoint::save_params(&wrong.params(), &mut ckpt).unwrap();
    let err =
        Cluster::load(cluster_config(ConvPolicy::Baseline, 2, 2, Duration::ZERO), ckpt.as_slice())
            .map(|_| ())
            .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn cluster_metrics_surface_spike_density_after_traffic() {
    let (ckpt, _) = vgg_checkpoint(&ConvPolicy::Baseline, 91);
    let cluster = Cluster::load(
        cluster_config(ConvPolicy::Baseline, 2, 2, Duration::from_millis(5)),
        ckpt.as_slice(),
    )
    .unwrap();
    assert!(
        cluster.metrics().spike_density.is_empty(),
        "no traffic yet: density summary must be empty"
    );
    assert_eq!(cluster.metrics().mean_spike_density, None);
    let session = cluster.session();
    for input in samples(91, 6) {
        session.infer(input).unwrap();
    }
    let m = drained_metrics(&cluster);
    assert_eq!(m.spike_density.len(), 6, "one density per VGG9 LIF layer");
    assert!(m.spike_density.iter().all(|&d| (0.0..=1.0).contains(&d)));
    assert!(m.spike_density.iter().any(|&d| d > 0.0), "traffic must register spike activity");
    let mean = m.mean_spike_density.expect("mean density tracked after traffic");
    assert!((0.0..=1.0).contains(&mean));
}
