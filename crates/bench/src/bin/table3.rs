//! Regenerates **Table III**: training performance before/after plugging
//! the PTT module into previous SNN methods — tdBN (ResNet20/CIFAR10),
//! TEBN (VGG9/CIFAR10), TET (VGG9/DVS-Gesture), NDA (VGG11/DVS-Gesture).
//!
//! Width-scaled architectures on the synthetic datasets (DESIGN.md §3);
//! the reproduction target is the *shape*: PTT cuts per-batch training
//! time on every method with only a small accuracy cost.

use ttsnn_bench::{train_and_measure, ExperimentConfig, MeasuredRow};
use ttsnn_core::TtMode;
use ttsnn_data::{Dataset, GestureStream, StaticImages};
use ttsnn_snn::augment::nda_augment;
use ttsnn_snn::{ConvPolicy, LossKind, Model, ResNetConfig, ResNetSnn, VggConfig, VggSnn};
use ttsnn_tensor::Rng;

enum Arch {
    ResNet20,
    Vgg9Tebn,
    Vgg9,
    Vgg11,
}

fn build(arch: &Arch, policy: &ConvPolicy, t: usize, rng: &mut Rng) -> Box<dyn Model> {
    match arch {
        Arch::ResNet20 => {
            Box::new(ResNetSnn::new(ResNetConfig::resnet20(10, (16, 16), 2), policy, rng))
        }
        Arch::Vgg9Tebn => {
            Box::new(VggSnn::new(VggConfig::vgg9(3, 10, (16, 16), 8).with_tebn(t), policy, rng))
        }
        Arch::Vgg9 => Box::new(VggSnn::new(VggConfig::vgg9(2, 6, (16, 16), 8), policy, rng)),
        // VGG11 pools five times, so it needs a 32x32 input.
        Arch::Vgg11 => Box::new(VggSnn::new(VggConfig::vgg11(2, 6, (32, 32), 16), policy, rng)),
    }
}

fn augmented(ds: &Dataset, rng: &mut Rng) -> Dataset {
    let samples = ds
        .samples()
        .iter()
        .map(|s| ttsnn_data::Sample { frames: nda_augment(&s.frames, rng), label: s.label })
        .collect();
    Dataset::new(samples, ds.num_classes())
}

fn main() {
    println!("TABLE III reproduction: base vs PTT plug-in");
    println!("============================================");
    let mut rng = Rng::seed_from(31);
    let t_static = 4usize;
    let t_dvs = 4usize;

    let cifar = StaticImages::cifar10_like(16, 16).dataset(160, &mut rng);
    let gesture = GestureStream::dvs_gesture_like(16, 16, 6, t_dvs).dataset(120, &mut rng);
    // VGG11 (five 2x2 pools) needs 32x32 frames.
    let gesture32 = GestureStream::dvs_gesture_like(32, 32, 6, t_dvs).dataset(120, &mut rng);
    let gesture_nda = augmented(&gesture32, &mut rng);

    let rows: Vec<(&str, Arch, &Dataset, usize, LossKind)> = vec![
        ("tdBN  / ResNet20 / CIFAR10-like", Arch::ResNet20, &cifar, t_static, LossKind::SumCe),
        ("TEBN  / VGG9     / CIFAR10-like", Arch::Vgg9Tebn, &cifar, t_static, LossKind::SumCe),
        ("TET   / VGG9     / DVS-Gesture-like", Arch::Vgg9, &gesture, t_dvs, LossKind::Tet),
        ("NDA   / VGG11    / DVS-Gesture-like", Arch::Vgg11, &gesture_nda, t_dvs, LossKind::SumCe),
    ];

    println!(
        "\n{:<38} {:>18} {:>22} {:>10}",
        "method/model/dataset", "acc base/PTT (%)", "time base/PTT (s)", "Δtime"
    );
    for (label, arch, ds, t, loss) in rows {
        let cfg = ExperimentConfig { timesteps: t, epochs: 4, loss, ..ExperimentConfig::quick(t) };
        let mut measured: Vec<MeasuredRow> = Vec::new();
        for (name, policy) in [("base", ConvPolicy::Baseline), ("PTT", ConvPolicy::tt(TtMode::Ptt))]
        {
            let mut rng = Rng::seed_from(cfg.seed);
            let mut model = build(&arch, &policy, t, &mut rng);
            measured.push(train_and_measure(model.as_mut(), name, ds, &cfg));
        }
        let (b, p) = (&measured[0], &measured[1]);
        println!(
            "{:<38} {:>8.2} /{:>8.2} {:>10.4} /{:>10.4} {:>8.2}%",
            label,
            b.test_accuracy,
            p.test_accuracy,
            b.step_seconds,
            p.step_seconds,
            p.time_reduction_vs(b)
        );
    }
    println!("\npaper reference: time reductions 25.0% (tdBN), 15.2% (TEBN),");
    println!("9.1% (TET), 19.7% (NDA), all with small accuracy drops.");
}
