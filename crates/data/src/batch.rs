//! Sample and batch containers shared by all dataset generators.

use ttsnn_tensor::{Rng, ShapeError, Tensor};

/// One labelled sample: a sequence of frames (one per timestep for dynamic
/// data; a single frame for static data, replicated by direct coding).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Frames, each `(C, H, W)`. Static samples hold one frame.
    pub frames: Vec<Tensor>,
    /// Class label.
    pub label: usize,
}

impl Sample {
    /// Stacks the per-timestep frames into one `(T, C, H, W)` tensor — the
    /// explicit per-timestep input shape the serving layer accepts, both
    /// for whole-stream requests and for timestep chunks fed to a
    /// streaming session.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the sample has no frames or the frames'
    /// shapes disagree.
    pub fn stacked(&self) -> Result<Tensor, ShapeError> {
        stack_frames(&self.frames)
    }
}

/// Stacks `(C, H, W)` frames into one `(T, C, H, W)` tensor (see
/// [`Sample::stacked`]).
///
/// # Errors
///
/// Returns [`ShapeError`] if `frames` is empty or the shapes disagree.
pub fn stack_frames(frames: &[Tensor]) -> Result<Tensor, ShapeError> {
    let first = frames
        .first()
        .ok_or_else(|| ShapeError::new("stack_frames: no frames to stack".to_string()))?;
    let mut shape = vec![frames.len()];
    shape.extend_from_slice(first.shape());
    let mut data = Vec::with_capacity(frames.len() * first.len());
    for f in frames {
        if f.shape() != first.shape() {
            return Err(ShapeError::new(format!(
                "stack_frames: frame shape {:?} differs from first frame {:?}",
                f.shape(),
                first.shape()
            )));
        }
        data.extend_from_slice(f.data());
    }
    Tensor::from_vec(data, &shape)
}

/// A mini-batch ready for BPTT training: per-timestep NCHW tensors plus
/// labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// One `(B, C, H, W)` tensor per timestep.
    pub frames: Vec<Tensor>,
    /// `B` class labels.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of timesteps.
    pub fn timesteps(&self) -> usize {
        self.frames.len()
    }

    /// The contiguous sub-batch of `len` samples starting at sample
    /// `start`: every per-timestep frame is sliced along its leading
    /// (batch) dimension, labels likewise. This is how the data-parallel
    /// trainer cuts a batch into micro-batches — slicing depends only on
    /// `(start, len)`, never on the worker the slice is destined for, so
    /// micro-batch contents are invariant to the shard count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `start + len` exceeds the batch size, any
    /// frame is not at least 2-dimensional, or `len == 0`.
    pub fn shard(&self, start: usize, len: usize) -> Result<Batch, ShapeError> {
        let b = self.len();
        if len == 0 || start + len > b {
            return Err(ShapeError::new(format!(
                "shard: samples [{start}, {}) out of range for batch of {b}",
                start + len
            )));
        }
        let mut frames = Vec::with_capacity(self.frames.len());
        for frame in &self.frames {
            let shape = frame.shape();
            if shape.len() < 2 || shape[0] != b {
                return Err(ShapeError::new(format!(
                    "shard: frame shape {shape:?} does not lead with batch size {b}"
                )));
            }
            let stride: usize = shape[1..].iter().product();
            let data = frame.data()[start * stride..(start + len) * stride].to_vec();
            let mut sub_shape = shape.to_vec();
            sub_shape[0] = len;
            frames.push(Tensor::from_vec(data, &sub_shape)?);
        }
        Ok(Batch { frames, labels: self.labels[start..start + len].to_vec() })
    }
}

/// A finite, in-memory dataset of [`Sample`]s with batching helpers.
///
/// ```
/// use ttsnn_data::{StaticImages, Dataset};
/// use ttsnn_tensor::Rng;
///
/// let gen = StaticImages::cifar10_like(8, 8);
/// let mut rng = Rng::seed_from(0);
/// let ds = gen.dataset(40, &mut rng);
/// let batches = ds.batches(10, 4, &mut rng).unwrap();
/// assert_eq!(batches.len(), 4);
/// assert_eq!(batches[0].timesteps(), 4);
/// assert_eq!(batches[0].frames[0].shape(), &[10, 3, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    samples: Vec<Sample>,
    num_classes: usize,
}

impl Dataset {
    /// Wraps samples with their class count.
    ///
    /// # Panics
    ///
    /// Panics if any sample's label is out of range or a sample has no
    /// frames.
    pub fn new(samples: Vec<Sample>, num_classes: usize) -> Self {
        for s in &samples {
            assert!(s.label < num_classes, "label {} out of range", s.label);
            assert!(!s.frames.is_empty(), "sample has no frames");
        }
        Self { samples, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The underlying samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Splits into (train, test) at `train_fraction`.
    pub fn split(mut self, train_fraction: f32, rng: &mut Rng) -> (Dataset, Dataset) {
        rng.shuffle(&mut self.samples);
        let cut = ((self.samples.len() as f32) * train_fraction).round() as usize;
        let test = self.samples.split_off(cut.min(self.samples.len()));
        (
            Dataset { samples: self.samples, num_classes: self.num_classes },
            Dataset { samples: test, num_classes: self.num_classes },
        )
    }

    /// Shuffles and groups samples into batches of `batch_size` (dropping a
    /// ragged tail), expanding every sample to `timesteps` frames: static
    /// samples are replicated (direct coding); dynamic samples must provide
    /// at least `timesteps` frames and are truncated to the first
    /// `timesteps`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch_size == 0`, `timesteps == 0`, or
    /// frames within a batch disagree in shape.
    pub fn batches(
        &self,
        batch_size: usize,
        timesteps: usize,
        rng: &mut Rng,
    ) -> Result<Vec<Batch>, ShapeError> {
        if batch_size == 0 || timesteps == 0 {
            return Err(ShapeError::new("batches: batch_size and timesteps must be positive"));
        }
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        rng.shuffle(&mut order);
        let mut out = Vec::new();
        for chunk in order.chunks(batch_size) {
            if chunk.len() < batch_size {
                break;
            }
            let mut frames_t: Vec<Vec<Tensor>> = vec![Vec::with_capacity(batch_size); timesteps];
            let mut labels = Vec::with_capacity(batch_size);
            for &idx in chunk {
                let s = &self.samples[idx];
                for (t, slot) in frames_t.iter_mut().enumerate() {
                    let frame = if s.frames.len() == 1 {
                        &s.frames[0] // direct coding: repeat the static frame
                    } else {
                        s.frames.get(t).ok_or_else(|| {
                            ShapeError::new(format!(
                                "batches: sample has {} frames, need {timesteps}",
                                s.frames.len()
                            ))
                        })?
                    };
                    slot.push(frame.clone());
                }
                labels.push(s.label);
            }
            let frames =
                frames_t.into_iter().map(|fs| Tensor::stack(&fs)).collect::<Result<Vec<_>, _>>()?;
            out.push(Batch { frames, labels });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(n: usize, frames_per_sample: usize) -> Dataset {
        let samples = (0..n)
            .map(|i| Sample {
                frames: (0..frames_per_sample)
                    .map(|t| Tensor::full(&[1, 2, 2], (i * 10 + t) as f32))
                    .collect(),
                label: i % 3,
            })
            .collect();
        Dataset::new(samples, 3)
    }

    #[test]
    fn batch_shapes_static() {
        let ds = toy_dataset(9, 1);
        let mut rng = Rng::seed_from(1);
        let batches = ds.batches(4, 3, &mut rng).unwrap();
        assert_eq!(batches.len(), 2); // 9/4 -> 2 full batches
        for b in &batches {
            assert_eq!(b.timesteps(), 3);
            assert_eq!(b.len(), 4);
            assert_eq!(b.frames[0].shape(), &[4, 1, 2, 2]);
            // direct coding repeats the frame
            assert_eq!(b.frames[0], b.frames[2]);
        }
    }

    #[test]
    fn batch_temporal_frames_differ() {
        let ds = toy_dataset(4, 4);
        let mut rng = Rng::seed_from(2);
        let batches = ds.batches(2, 4, &mut rng).unwrap();
        let b = &batches[0];
        assert_ne!(b.frames[0], b.frames[1]);
    }

    #[test]
    fn batch_errors() {
        let ds = toy_dataset(4, 2);
        let mut rng = Rng::seed_from(3);
        assert!(ds.batches(0, 2, &mut rng).is_err());
        assert!(ds.batches(2, 0, &mut rng).is_err());
        // dynamic sample with too few frames for requested timesteps
        assert!(ds.batches(2, 5, &mut rng).is_err());
    }

    #[test]
    fn split_preserves_samples() {
        let ds = toy_dataset(10, 1);
        let mut rng = Rng::seed_from(4);
        let (train, test) = ds.split(0.8, &mut rng);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(train.num_classes(), 3);
    }

    #[test]
    fn shard_slices_frames_and_labels() {
        let ds = toy_dataset(8, 1);
        let mut rng = Rng::seed_from(5);
        let batch = &ds.batches(8, 2, &mut rng).unwrap()[0];
        let micro = batch.shard(2, 3).unwrap();
        assert_eq!(micro.len(), 3);
        assert_eq!(micro.timesteps(), 2);
        assert_eq!(micro.frames[0].shape(), &[3, 1, 2, 2]);
        assert_eq!(&micro.labels[..], &batch.labels[2..5]);
        let stride = 4; // 1*2*2
        assert_eq!(micro.frames[1].data(), &batch.frames[1].data()[2 * stride..5 * stride]);
    }

    #[test]
    fn shard_concatenation_covers_batch() {
        // Micro-batches tile the batch exactly: shard(0,2)+shard(2,2) ==
        // the original 4-sample batch, frame for frame.
        let ds = toy_dataset(4, 2);
        let mut rng = Rng::seed_from(6);
        let batch = &ds.batches(4, 2, &mut rng).unwrap()[0];
        let a = batch.shard(0, 2).unwrap();
        let b = batch.shard(2, 2).unwrap();
        for t in 0..batch.timesteps() {
            let mut joined = a.frames[t].data().to_vec();
            joined.extend_from_slice(b.frames[t].data());
            assert_eq!(&joined[..], batch.frames[t].data());
        }
    }

    #[test]
    fn shard_rejects_out_of_range() {
        let ds = toy_dataset(4, 1);
        let mut rng = Rng::seed_from(7);
        let batch = &ds.batches(4, 1, &mut rng).unwrap()[0];
        assert!(batch.shard(3, 2).is_err());
        assert!(batch.shard(0, 0).is_err());
        assert!(batch.shard(0, 4).is_ok());
    }

    #[test]
    #[should_panic(expected = "label")]
    fn new_validates_labels() {
        Dataset::new(vec![Sample { frames: vec![Tensor::zeros(&[1, 2, 2])], label: 5 }], 3);
    }
}
