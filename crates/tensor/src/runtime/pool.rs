//! Persistent channel-fed worker pool.
//!
//! [`Runtime`] owns a set of long-lived worker threads fed from a shared
//! injector queue. A parallel region enqueues one task per index range,
//! runs the first range on the calling thread, then *helps* — executing
//! queued tasks (its own or other regions') while it waits — so nested
//! regions can never deadlock. Dispatching a region costs one mutex-guarded
//! queue push and a condvar wake (hundreds of nanoseconds) instead of the
//! few microseconds per `std::thread::spawn` the previous scoped fork/join
//! design paid, which is what makes many small regions — per-sample conv
//! tiles, per-micro-batch backward passes — worth forking at all.
//!
//! Workers are spawned lazily on the first region that wants more than one
//! thread, so `Runtime::new(1)` (the serial runtimes the conv gradients
//! construct per call) never starts a thread. Dropping the last clone of a
//! [`Runtime`] shuts its pool down and joins the workers; the process-wide
//! [`Runtime::global`] pool lives for the lifetime of the process.
//!
//! # Panic propagation
//!
//! A panic inside a work closure is caught on the worker that ran it,
//! carried back through the region's completion latch, and re-raised on
//! the thread that opened the region once every other task of the region
//! has finished. The pool itself survives: subsequent regions run normally.
//!
//! # Safety
//!
//! The single `unsafe` surface of the workspace lives here: a region's
//! closure is lent to the queue as a type-erased pointer. This is sound
//! because [`Runtime::run_region`] does not return until the region's
//! latch counts every enqueued task as finished, so the closure (and the
//! latch, which lives in the same stack frame) strictly outlive every
//! dereference — including panic unwinding, which also waits on the latch
//! before resuming.

#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// State shared between the pool's workers and region callers.
struct Shared {
    /// Injector queue. Workers pop from the front (oldest region first);
    /// helping callers pop from the back (their own tasks first).
    queue: Mutex<VecDeque<Task>>,
    /// Signalled on task push, region completion, and shutdown.
    work_cv: Condvar,
    /// Set once by [`Pool::drop`]; workers exit when the queue is empty.
    shutdown: AtomicBool,
}

/// Countdown latch for one parallel region, living on the region caller's
/// stack. Carries the first panic payload from any task of the region.
struct Latch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A pre-split output run handed to one task of `parallel_over_ranges`:
/// `(first_slab_index, run)`, taken through the mutex exactly once.
type SliceRun<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;

/// One enqueued index of a region's closure, type-erased so tasks from
/// closures of different regions share a queue.
struct Task {
    /// Thin pointer to the region's `&(dyn Fn(usize) + Sync)` reference.
    data: *const (),
    /// Thunk that re-fattens `data` and calls the closure with `index`.
    run: unsafe fn(*const (), usize),
    index: usize,
    /// The region's latch (valid until the region returns — see module
    /// safety notes).
    latch: *const Latch,
}

// SAFETY: `data` and `latch` point into the stack frame of a caller that
// blocks until `latch.remaining` reaches zero, and the pointee closure is
// `Sync`, so sending the pointers to a worker thread is sound.
unsafe impl Send for Task {}

impl Task {
    /// Runs the task, records any panic in the latch, and counts it done
    /// (waking waiters if it was the region's last task).
    fn execute(self, shared: &Shared) {
        // SAFETY: the region caller waits on the latch before returning,
        // so both pointers are live for the duration of this call.
        let latch = unsafe { &*self.latch };
        let run = self.run;
        let data = self.data;
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { run(data, self.index) }));
        if let Err(payload) = result {
            latch.record_panic(payload);
        }
        if latch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task of the region: wake the region owner. Taking the
            // queue lock orders this notify against the owner's
            // check-then-wait, so the wakeup cannot be lost.
            let _guard = shared.queue.lock().unwrap();
            shared.work_cv.notify_all();
        }
    }
}

/// The persistent workers behind a [`Runtime`] with more than one thread.
struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads parked on the injector queue.
    fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ttsnn-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers: handles }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // No region can be active here: regions borrow the Runtime that
        // (transitively) owns this pool, so the queue is already empty.
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.queue.lock().unwrap();
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker main loop: pop oldest task, run it, sleep when idle.
fn worker_loop(shared: &Shared) {
    let mut guard = shared.queue.lock().unwrap();
    loop {
        if let Some(task) = guard.pop_front() {
            drop(guard);
            task.execute(shared);
            guard = shared.queue.lock().unwrap();
        } else if shared.shutdown.load(Ordering::Acquire) {
            return;
        } else {
            guard = shared.work_cv.wait(guard).unwrap();
        }
    }
}

/// Thread-count policy plus the (lazily spawned) persistent worker pool
/// behind every parallel kernel.
///
/// The global instance ([`Runtime::global`]) is sized from
/// `TTSNN_NUM_THREADS` if set (clamped to ≥ 1), otherwise from
/// [`std::thread::available_parallelism`]. Tests construct explicit
/// runtimes with [`Runtime::new`] to pin thread counts; clones share one
/// pool, and dropping the last clone joins its workers.
#[derive(Clone)]
pub struct Runtime {
    threads: usize,
    pool: Arc<OnceLock<Pool>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads)
            .field("pool_started", &self.pool.get().is_some())
            .finish()
    }
}

static GLOBAL: OnceLock<Runtime> = OnceLock::new();

impl Runtime {
    /// A runtime that uses exactly `threads` workers (clamped to ≥ 1).
    /// Worker threads are spawned lazily on the first parallel region; a
    /// one-thread runtime never spawns.
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1), pool: Arc::new(OnceLock::new()) }
    }

    /// The process-wide runtime, sized once from `TTSNN_NUM_THREADS` or the
    /// machine's available parallelism.
    pub fn global() -> &'static Runtime {
        GLOBAL.get_or_init(|| {
            let from_env = std::env::var("TTSNN_NUM_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0);
            let threads = from_env.unwrap_or_else(|| {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
            });
            Runtime::new(threads)
        })
    }

    /// Number of worker threads parallel regions may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool, spawning its `threads - 1` workers on first use (the
    /// calling thread is the remaining worker of every region).
    fn pool(&self) -> &Pool {
        self.pool.get_or_init(|| Pool::new(self.threads - 1))
    }

    /// Executes `f(0)`, `f(1)`, …, `f(tasks - 1)` across the pool, each
    /// index exactly once, returning when all are done. Index 0 runs on the
    /// calling thread, which then executes further queued tasks while it
    /// waits. Panics from any index are re-raised here after the region
    /// drains.
    fn run_region(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks <= 1 {
            if tasks == 1 {
                f(0);
            }
            return;
        }
        let shared = Arc::clone(&self.pool().shared);
        let latch = Latch { remaining: AtomicUsize::new(tasks - 1), panic: Mutex::new(None) };
        // Thin pointer to the fat `&dyn` reference on this stack frame.
        let fref: &(dyn Fn(usize) + Sync) = f;
        let data = std::ptr::addr_of!(fref) as *const ();
        unsafe fn thunk(data: *const (), index: usize) {
            // SAFETY: `data` was produced from `&fref` above and `fref`
            // outlives the region (the caller waits on the latch).
            let fref: &(dyn Fn(usize) + Sync) =
                unsafe { *(data as *const &(dyn Fn(usize) + Sync)) };
            fref(index);
        }
        {
            let mut queue = shared.queue.lock().unwrap();
            for index in 1..tasks {
                queue.push_back(Task { data, run: thunk, index, latch: &latch });
            }
            shared.work_cv.notify_all();
        }
        // The caller is worker 0. Catch its panic so the region still
        // drains before unwinding past the borrowed closure.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(0))) {
            latch.record_panic(payload);
        }
        // Help until every enqueued task has finished: prefer our own most
        // recently pushed work (back of the queue), sleep only when the
        // queue is empty. Executing other regions' tasks here is what makes
        // nested regions deadlock-free.
        let mut queue = shared.queue.lock().unwrap();
        while latch.remaining.load(Ordering::Acquire) != 0 {
            if let Some(task) = queue.pop_back() {
                drop(queue);
                task.execute(&shared);
                queue = shared.queue.lock().unwrap();
            } else {
                queue = shared.work_cv.wait(queue).unwrap();
            }
        }
        drop(queue);
        let payload = latch.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs `f(start, end)` over a partition of `0..n` into at most
    /// `threads` contiguous ranges. `min_chunk` is the smallest range worth
    /// forking for: with `n <= min_chunk` (or one thread) everything runs
    /// inline on the caller's thread.
    ///
    /// The partition never affects *what* each index computes, so callers
    /// that keep per-index work self-contained get thread-count-independent
    /// results for free.
    pub fn parallel_for(&self, n: usize, min_chunk: usize, f: impl Fn(usize, usize) + Sync) {
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n.div_ceil(min_chunk.max(1))).max(1);
        if workers == 1 {
            f(0, n);
            return;
        }
        let chunk = n.div_ceil(workers);
        let tasks = n.div_ceil(chunk);
        self.run_region(tasks, &|w| {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(n);
            if start < end {
                f(start, end);
            }
        });
    }

    /// Splits `data` into `n = data.len() / slab` equal slabs and hands each
    /// worker one disjoint contiguous **run** of slabs:
    /// `f(first_slab_index, run)` with `run.len()` a multiple of `slab`.
    /// This is the mutable-output counterpart of [`Runtime::parallel_for`] —
    /// kernels tile freely within their run.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `slab` (with `slab > 0`).
    pub fn parallel_over_ranges<T: Send>(
        &self,
        data: &mut [T],
        slab: usize,
        min_slabs: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        if data.is_empty() {
            return;
        }
        assert!(slab > 0 && data.len().is_multiple_of(slab), "parallel_over_ranges: uneven slabs");
        let n = data.len() / slab;
        let workers = self.threads.min(n.div_ceil(min_slabs.max(1))).max(1);
        if workers == 1 {
            f(0, data);
            return;
        }
        // Pre-split the output into one disjoint run per task; each task
        // takes its run through the (uncontended) mutex exactly once.
        let chunk = n.div_ceil(workers);
        let mut runs: Vec<SliceRun<'_, T>> = Vec::with_capacity(workers);
        let mut rest = data;
        let mut next = 0usize;
        while next < n {
            let take = chunk.min(n - next);
            let (head, tail) = rest.split_at_mut(take * slab);
            rest = tail;
            runs.push(Mutex::new(Some((next, head))));
            next += take;
        }
        let fref = &f;
        let runs_ref = &runs;
        self.run_region(runs.len(), &|i| {
            let (base, run) =
                runs_ref[i].lock().unwrap().take().expect("pool ran a region task twice");
            fref(base, run);
        });
    }

    /// Per-slab convenience over [`Runtime::parallel_over_ranges`]:
    /// `f(slab_index, slab)` for every slab, parallel across workers.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `slab` (with `slab > 0`).
    pub fn parallel_over_slabs<T: Send>(
        &self,
        data: &mut [T],
        slab: usize,
        min_slabs: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        self.parallel_over_ranges(data, slab, min_slabs, |base, run| {
            for (i, s) in run.chunks_mut(slab).enumerate() {
                f(base + i, s);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn new_clamps_to_one() {
        assert_eq!(Runtime::new(0).threads(), 1);
        assert_eq!(Runtime::new(3).threads(), 3);
    }

    #[test]
    fn global_is_positive_and_stable() {
        let a = Runtime::global().threads();
        assert!(a >= 1);
        assert_eq!(Runtime::global().threads(), a);
    }

    #[test]
    fn parallel_for_covers_range_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            for n in [0usize, 1, 7, 64, 65] {
                let rt = Runtime::new(threads);
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                rt.parallel_for(n, 1, |start, end| {
                    for h in &hits[start..end] {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn parallel_for_respects_min_chunk_inline() {
        // n <= min_chunk must run inline: observable as exactly one range.
        let ranges = std::sync::Mutex::new(Vec::new());
        Runtime::new(8).parallel_for(10, 16, |s, e| ranges.lock().unwrap().push((s, e)));
        assert_eq!(*ranges.lock().unwrap(), vec![(0, 10)]);
    }

    #[test]
    fn parallel_over_slabs_writes_disjoint() {
        for threads in [1usize, 2, 5] {
            let mut data = vec![0u32; 12 * 4];
            Runtime::new(threads).parallel_over_slabs(&mut data, 4, 1, |i, slab| {
                for v in slab.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
            for (i, chunk) in data.chunks(4).enumerate() {
                assert!(chunk.iter().all(|&v| v == i as u32 + 1), "threads={threads} slab={i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "uneven")]
    fn parallel_over_slabs_rejects_uneven() {
        let mut data = vec![0u32; 10];
        Runtime::new(2).parallel_over_slabs(&mut data, 4, 1, |_, _| {});
    }

    #[test]
    fn workers_persist_across_regions() {
        // The same pool (hence the same worker threads) serves every region
        // of a runtime: run many tiny regions and record which threads
        // participated — the set must stay bounded by the pool size, not
        // grow per region the way spawn-per-region would.
        let rt = Runtime::new(3);
        let names = std::sync::Mutex::new(std::collections::HashSet::new());
        for _ in 0..50 {
            rt.parallel_for(3, 1, |_, _| {
                names.lock().unwrap().insert(format!("{:?}", std::thread::current().id()));
            });
        }
        let seen = names.lock().unwrap().len();
        assert!(seen <= 3, "50 regions used {seen} distinct threads; workers are not persistent");
    }

    #[test]
    fn panic_in_region_propagates_and_pool_survives() {
        let rt = Runtime::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.parallel_for(8, 1, |start, _| {
                if start >= 4 {
                    panic!("worker range {start} exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must cross the region boundary");
        let msg = payload.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("exploded"), "unexpected payload: {msg}");
        // The pool is intact: the next region completes normally.
        let hits = AtomicUsize::new(0);
        rt.parallel_for(16, 1, |start, end| {
            hits.fetch_add(end - start, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panic_on_caller_range_still_drains_region() {
        // Range 0 runs on the caller; its panic must not unwind before the
        // spawned tasks finish (they borrow the closure), and must still
        // reach the caller afterwards.
        let rt = Runtime::new(2);
        let others = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.parallel_for(2, 1, |start, end| {
                if start == 0 {
                    panic!("caller range exploded");
                }
                others.fetch_add(end - start, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(others.load(Ordering::Relaxed), 1, "sibling task must have completed");
    }

    #[test]
    fn nested_regions_complete() {
        // A worker that opens a region of its own helps from the shared
        // queue while waiting, so nesting cannot deadlock even when the
        // outer region occupies every worker.
        let rt = Runtime::new(4);
        let total = AtomicUsize::new(0);
        rt.parallel_for(4, 1, |outer_start, outer_end| {
            for _ in outer_start..outer_end {
                rt.parallel_for(8, 1, |s, e| {
                    total.fetch_add(e - s, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn drop_joins_workers() {
        // Dropping the last clone of a runtime shuts the pool down; the
        // worker threads exit rather than leak. Observable as: a fresh
        // runtime after the drop still works (no poisoned global state).
        let rt = Runtime::new(4);
        rt.parallel_for(8, 1, |_, _| {});
        let clone = rt.clone();
        drop(rt);
        // The clone still owns the pool.
        let hits = AtomicUsize::new(0);
        clone.parallel_for(8, 1, |s, e| {
            hits.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        drop(clone); // joins here
        let fresh = Runtime::new(2);
        fresh.parallel_for(4, 1, |_, _| {});
    }
}
