//! Multi-plan routing: several frozen checkpoints — f32 and int8 plans
//! alike — mounted behind one listener and addressed by plan name.
//!
//! [`Router::load`] freezes every [`PlanSpec`] into its own
//! [`Cluster`] (own replicas, scheduler, and metrics; weights of each
//! plan loaded once and `Arc`-shared across that plan's replicas). The
//! server routes each request by its wire-level plan name; `/metrics`
//! scrapes render every plan's snapshot side by side; and
//! [`Router::drift`] re-measures int8-vs-f32 logit drift **online**, on
//! live clusters, without touching their serving state.

use std::collections::BTreeMap;
use std::io;

use ttsnn_infer::{
    Cluster, ClusterConfig, ClusterMetrics, ClusterSession, InferError, PlanDrift, QuantSpec,
    SpikeDensityReport,
};
use ttsnn_obs::watchdog::HealthReport;
use ttsnn_tensor::Tensor;

use crate::telemetry::HealthBoard;

/// One plan to mount: a name, a serving config, an optional quantization
/// spec (present = freeze an int8 plan), and the checkpoint bytes.
pub struct PlanSpec {
    /// Routing key carried in each request frame.
    pub name: String,
    /// Cluster topology and engine config for this plan.
    pub config: ClusterConfig,
    /// `Some` freezes the checkpoint into an int8 plan
    /// (`Cluster::load_quantized`); `None` serves f32.
    pub quant: Option<QuantSpec>,
    /// Serialized checkpoint (`ttsnn_snn::checkpoint` format).
    pub checkpoint: Vec<u8>,
}

struct Plan {
    cluster: Cluster,
    session: ClusterSession,
}

/// A set of mounted plans, routed by name.
pub struct Router {
    plans: BTreeMap<String, Plan>,
    health: HealthBoard,
}

impl Router {
    /// Freezes every spec into its own serving cluster.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for a duplicate or empty plan name, plus anything
    /// `Cluster::load` / `Cluster::load_quantized` rejects (bad config,
    /// malformed checkpoint, empty calibration set).
    pub fn load(specs: Vec<PlanSpec>) -> io::Result<Router> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
        let mut plans = BTreeMap::new();
        for spec in specs {
            if spec.name.is_empty() {
                return Err(invalid("plan name must not be empty".into()));
            }
            if plans.contains_key(&spec.name) {
                return Err(invalid(format!("duplicate plan name {:?}", spec.name)));
            }
            let cluster = match spec.quant {
                Some(q) => Cluster::load_quantized(spec.config, q, spec.checkpoint.as_slice())?,
                None => Cluster::load(spec.config, spec.checkpoint.as_slice())?,
            };
            let session = cluster.session();
            plans.insert(spec.name, Plan { cluster, session });
        }
        Ok(Router { plans, health: HealthBoard::default() })
    }

    /// The health board the telemetry sampler publishes per-plan
    /// watchdog verdicts to (and `/healthz` reads from). Cloning shares
    /// the same board.
    pub fn health_board(&self) -> HealthBoard {
        self.health.clone()
    }

    /// A plan's current watchdog verdict — `Healthy` before the first
    /// sampler tick, or when telemetry is off.
    pub fn health(&self, plan: &str) -> HealthReport {
        self.health.get(plan)
    }

    /// Every mounted plan's current health, plan-name order.
    pub fn health_all(&self) -> Vec<(String, HealthReport)> {
        self.plans.keys().map(|name| (name.clone(), self.health.get(name))).collect()
    }

    /// Mounted plan names, sorted.
    pub fn plan_names(&self) -> Vec<&str> {
        self.plans.keys().map(String::as_str).collect()
    }

    /// The shared session of a mounted plan, or `None` for an unknown
    /// name.
    pub fn session(&self, plan: &str) -> Option<&ClusterSession> {
        self.plans.get(plan).map(|p| &p.session)
    }

    /// The underlying cluster of a mounted plan.
    pub fn cluster(&self, plan: &str) -> Option<&Cluster> {
        self.plans.get(plan).map(|p| &p.cluster)
    }

    /// A consistent metrics snapshot of every mounted plan, in name
    /// order — the `/metrics` page's data source.
    pub fn metrics(&self) -> Vec<(String, ClusterMetrics)> {
        self.plans.iter().map(|(name, p)| (name.clone(), p.cluster.metrics())).collect()
    }

    /// Measures `candidate`'s logit drift against `reference` **online**:
    /// both live clusters serve `inputs` (per-sample determinism makes
    /// concurrent traffic irrelevant to the bits) and the same statistics
    /// as `ttsnn_infer::plan_drift` are computed from the replies, with
    /// densities read from each cluster's cumulative metrics.
    ///
    /// # Errors
    ///
    /// `InferError::Shape` naming an unknown plan; otherwise the first
    /// ticket error from either plan.
    pub fn drift(
        &self,
        reference: &str,
        candidate: &str,
        inputs: &[Tensor],
    ) -> Result<PlanDrift, InferError> {
        let unknown = |name: &str| InferError::Shape(format!("unknown plan {name:?}"));
        let r = self.plans.get(reference).ok_or_else(|| unknown(reference))?;
        let c = self.plans.get(candidate).ok_or_else(|| unknown(candidate))?;
        let mut mean_acc = 0.0f64;
        let mut elems = 0usize;
        let mut max_abs = 0.0f32;
        let mut agreed = 0usize;
        // Submit everything up front so both plans' micro-batching
        // engages; blocking submission keeps this probe subject to the
        // same backpressure as any client.
        let ref_tickets: Vec<_> = inputs
            .iter()
            .map(|x| r.session.submit(x.clone()).map_err(|_| InferError::EngineClosed))
            .collect::<Result<_, _>>()?;
        let cand_tickets: Vec<_> = inputs
            .iter()
            .map(|x| c.session.submit(x.clone()).map_err(|_| InferError::EngineClosed))
            .collect::<Result<_, _>>()?;
        for (tr, tc) in ref_tickets.into_iter().zip(cand_tickets) {
            let (yr, yc) = (tr.wait()?, tc.wait()?);
            for (a, b) in yr.data().iter().zip(yc.data()) {
                let d = (a - b).abs();
                mean_acc += d as f64;
                max_abs = max_abs.max(d);
            }
            elems += yr.data().len();
            if yr.argmax() == yc.argmax() {
                agreed += 1;
            }
        }
        let density = |p: &Plan| {
            let m = p.cluster.metrics();
            m.mean_spike_density
                .map(|mean| SpikeDensityReport { per_layer: m.spike_density, mean: Some(mean) })
        };
        Ok(PlanDrift {
            requests: inputs.len(),
            mean_abs_err: if elems > 0 { mean_acc / elems as f64 } else { 0.0 },
            max_abs_err: max_abs,
            agreement: if inputs.is_empty() { 1.0 } else { agreed as f64 / inputs.len() as f64 },
            reference_density: density(r),
            candidate_density: density(c),
        })
    }
}
